#include "traffic/source.hpp"

#include <utility>

#include "packet/size_law.hpp"
#include "util/contracts.hpp"

namespace pds {

GapSampler pareto_gaps(double alpha, double mean) {
  const ParetoDist d = ParetoDist::with_mean(alpha, mean);
  return [d](Rng& rng) { return d.sample(rng); };
}

GapSampler exponential_gaps(double mean) {
  const ExponentialDist d(mean);
  return [d](Rng& rng) { return d.sample(rng); };
}

GapSampler constant_gaps(double gap) {
  PDS_CHECK(gap > 0.0, "gap must be positive");
  return [gap](Rng&) { return gap; };
}

SizeSampler fixed_size(std::uint32_t bytes) {
  PDS_CHECK(bytes > 0, "packet size must be positive");
  return [bytes](Rng&) { return bytes; };
}

SizeSampler law_size(DiscreteDist law) {
  return [law = std::move(law)](Rng& rng) {
    return sample_size_bytes(law, rng);
  };
}

namespace {

// Shared emission loop for the infinite renewal sources. The shared_ptr
// state pattern lets a destroyed source cancel its pending event safely:
// the pending event owns one reference and keeps the state alive until it
// fires. That reference is *moved* from each fired event into the next one
// it schedules, so steady-state emission performs no refcount traffic and
// (the capture being 16 inline bytes of SimEvent storage) no heap
// allocation per packet.
template <typename StateT>
void arm_next(std::shared_ptr<StateT> st) {
  const double gap = st->gaps(st->rng);
  PDS_REQUIRE(gap > 0.0);
  Simulator& sim = st->sim;
  sim.schedule_in(gap, SimEvent(
                           SimEvent::TrustedRelocation{},
                           [st = std::move(st)]() mutable {
                             if (st->stopped) return;
                             st->emit();
                             ++st->emitted;
                             arm_next(std::move(st));
                           },
                           "traffic.source"));
}

}  // namespace

struct RenewalSource::State {
  Simulator& sim;
  PacketIdAllocator& ids;
  ClassId cls;
  GapSampler gaps;
  SizeSampler sizes;
  Rng rng;
  PacketHandler handler;
  bool stopped = false;
  bool started = false;
  std::uint64_t emitted = 0;

  void emit() {
    Packet p;
    p.id = ids.next();
    p.cls = cls;
    p.size_bytes = sizes(rng);
    p.created = sim.now();
    handler(std::move(p));
  }
};

RenewalSource::RenewalSource(Simulator& sim, PacketIdAllocator& ids,
                             ClassId cls, GapSampler gaps, SizeSampler sizes,
                             Rng rng, PacketHandler handler)
    : state_(std::make_shared<State>(State{sim, ids, cls, std::move(gaps),
                                           std::move(sizes), rng,
                                           std::move(handler)})) {
  PDS_CHECK(static_cast<bool>(state_->gaps), "null gap sampler");
  PDS_CHECK(static_cast<bool>(state_->sizes), "null size sampler");
  PDS_CHECK(static_cast<bool>(state_->handler), "null packet handler");
}

RenewalSource::~RenewalSource() {
  if (state_) state_->stopped = true;
}

void RenewalSource::start(SimTime at) {
  PDS_CHECK(!state_->started, "source already started");
  state_->started = true;
  state_->sim.schedule_at(
      at, SimEvent(SimEvent::TrustedRelocation{}, [st = state_]() mutable {
        if (!st->stopped) arm_next(std::move(st));
      }, "traffic.source"));
}

void RenewalSource::stop() noexcept { state_->stopped = true; }

std::uint64_t RenewalSource::packets_emitted() const noexcept {
  return state_->emitted;
}

struct ClassMixSource::State {
  Simulator& sim;
  PacketIdAllocator& ids;
  std::vector<double> cumulative;  // cumulative class fractions
  GapSampler gaps;
  SizeSampler sizes;
  Rng rng;
  PacketHandler handler;
  bool stopped = false;
  bool started = false;
  std::uint64_t emitted = 0;

  ClassId draw_class() {
    const double u = rng.uniform01();
    for (std::size_t c = 0; c < cumulative.size(); ++c) {
      if (u < cumulative[c]) return static_cast<ClassId>(c);
    }
    return static_cast<ClassId>(cumulative.size() - 1);
  }

  void emit() {
    Packet p;
    p.id = ids.next();
    p.cls = draw_class();
    p.size_bytes = sizes(rng);
    p.created = sim.now();
    handler(std::move(p));
  }
};

ClassMixSource::ClassMixSource(Simulator& sim, PacketIdAllocator& ids,
                               std::vector<double> class_fractions,
                               GapSampler gaps, SizeSampler sizes, Rng rng,
                               PacketHandler handler) {
  PDS_CHECK(!class_fractions.empty(), "need at least one class fraction");
  double total = 0.0;
  for (const double f : class_fractions) {
    PDS_CHECK(f >= 0.0, "negative class fraction");
    total += f;
  }
  PDS_CHECK(total > 0.0, "all class fractions are zero");
  std::vector<double> cumulative;
  double cum = 0.0;
  for (const double f : class_fractions) {
    cum += f / total;
    cumulative.push_back(cum);
  }
  cumulative.back() = 1.0;
  state_ = std::make_shared<State>(State{sim, ids, std::move(cumulative),
                                         std::move(gaps), std::move(sizes),
                                         rng, std::move(handler)});
  PDS_CHECK(static_cast<bool>(state_->gaps), "null gap sampler");
  PDS_CHECK(static_cast<bool>(state_->sizes), "null size sampler");
  PDS_CHECK(static_cast<bool>(state_->handler), "null packet handler");
}

ClassMixSource::~ClassMixSource() {
  if (state_) state_->stopped = true;
}

void ClassMixSource::start(SimTime at) {
  PDS_CHECK(!state_->started, "source already started");
  state_->started = true;
  state_->sim.schedule_at(
      at, SimEvent(SimEvent::TrustedRelocation{}, [st = state_]() mutable {
        if (!st->stopped) arm_next(std::move(st));
      }, "traffic.source"));
}

void ClassMixSource::stop() noexcept { state_->stopped = true; }

std::uint64_t ClassMixSource::packets_emitted() const noexcept {
  return state_->emitted;
}

struct CbrFlowSource::State {
  Simulator& sim;
  PacketIdAllocator& ids;
  ClassId cls;
  FlowId flow;
  std::uint32_t count;
  std::uint32_t size_bytes;
  SimTime interval;
  PacketHandler handler;
  std::uint64_t emitted = 0;

  // The pending-event reference moves through the chain (see arm_next).
  static void emit_and_rearm(std::shared_ptr<State> st) {
    Packet p;
    p.id = st->ids.next();
    p.cls = st->cls;
    p.flow = st->flow;
    p.size_bytes = st->size_bytes;
    p.created = st->sim.now();
    st->handler(std::move(p));
    ++st->emitted;
    if (st->emitted < st->count) {
      Simulator& sim = st->sim;
      const SimTime interval = st->interval;
      sim.schedule_in(interval, SimEvent(
                                    SimEvent::TrustedRelocation{},
                                    [st = std::move(st)]() mutable {
                                      emit_and_rearm(std::move(st));
                                    },
                                    "traffic.cbr"));
    }
  }
};

CbrFlowSource::CbrFlowSource(Simulator& sim, PacketIdAllocator& ids,
                             ClassId cls, FlowId flow, std::uint32_t count,
                             std::uint32_t size_bytes, SimTime interval,
                             PacketHandler handler)
    : state_(std::make_shared<State>(State{sim, ids, cls, flow, count,
                                           size_bytes, interval,
                                           std::move(handler)})) {
  PDS_CHECK(count > 0, "flow needs at least one packet");
  PDS_CHECK(size_bytes > 0, "packet size must be positive");
  PDS_CHECK(interval > 0.0, "interval must be positive");
  PDS_CHECK(static_cast<bool>(state_->handler), "null packet handler");
}

void CbrFlowSource::start(SimTime at) {
  PDS_CHECK(state_->emitted == 0, "flow already started");
  state_->sim.schedule_at(
      at, SimEvent(SimEvent::TrustedRelocation{}, [st = state_]() mutable {
        State::emit_and_rearm(std::move(st));
      }, "traffic.cbr"));
}

std::uint64_t CbrFlowSource::packets_emitted() const noexcept {
  return state_->emitted;
}

bool CbrFlowSource::finished() const noexcept {
  return state_->emitted >= state_->count;
}

}  // namespace pds
