// Traffic sources.
//
// Sources are event-driven packet emitters attached to a Simulator. Each
// emitted packet is handed to a caller-supplied handler (normally
// Link::arrive). All randomness comes from a per-source Rng so sources are
// independent and runs are reproducible.
//
// The paper's workloads:
//  * Study A: one renewal source per class with Pareto(alpha=1.9)
//    interarrivals and the three-point size law.
//  * Study B: cross-traffic sources emitting 500 B packets whose class is
//    drawn from the 40/30/20/10 mix, plus finite periodic "user flows".
#pragma once

#include <cstdint>
#include <functional>
#include <memory>

#include "dsim/simulator.hpp"
#include "packet/packet.hpp"
#include "rng/distributions.hpp"
#include "rng/rng.hpp"

namespace pds {

// Shared per-run packet id counter so ids are unique across sources.
class PacketIdAllocator {
 public:
  std::uint64_t next() noexcept { return next_++; }

 private:
  std::uint64_t next_ = 0;
};

using PacketHandler = std::function<void(Packet)>;

// Samples successive interarrival gaps (time units) or sizes (bytes).
using GapSampler = std::function<double(Rng&)>;
using SizeSampler = std::function<std::uint32_t(Rng&)>;

// Convenience adaptors.
GapSampler pareto_gaps(double alpha, double mean);
GapSampler exponential_gaps(double mean);
GapSampler constant_gaps(double gap);
SizeSampler fixed_size(std::uint32_t bytes);
SizeSampler law_size(DiscreteDist law);

// Infinite renewal process emitting packets of one class.
class RenewalSource {
 public:
  RenewalSource(Simulator& sim, PacketIdAllocator& ids, ClassId cls,
                GapSampler gaps, SizeSampler sizes, Rng rng,
                PacketHandler handler);
  ~RenewalSource();

  RenewalSource(const RenewalSource&) = delete;
  RenewalSource& operator=(const RenewalSource&) = delete;

  // Begins emitting; the first packet is sent one interarrival gap after
  // `at` (a phase draw, so sources started together do not align).
  void start(SimTime at);
  void stop() noexcept;

  std::uint64_t packets_emitted() const noexcept;

 private:
  struct State;
  std::shared_ptr<State> state_;
};

// Infinite renewal process whose packets draw their class per emission from
// a discrete mix — the paper's Study B cross-traffic sources.
class ClassMixSource {
 public:
  // `class_fractions[c]` is the probability that an emitted packet belongs
  // to class c; must sum to 1 (normalized internally).
  ClassMixSource(Simulator& sim, PacketIdAllocator& ids,
                 std::vector<double> class_fractions, GapSampler gaps,
                 SizeSampler sizes, Rng rng, PacketHandler handler);
  ~ClassMixSource();

  ClassMixSource(const ClassMixSource&) = delete;
  ClassMixSource& operator=(const ClassMixSource&) = delete;

  void start(SimTime at);
  void stop() noexcept;

  std::uint64_t packets_emitted() const noexcept;

 private:
  struct State;
  std::shared_ptr<State> state_;
};

// Finite periodic flow: `count` packets of fixed size, one every `interval`
// time units starting at `start` — the Study B "user flows" (the periodic
// spacing is the paper's technicality ensuring the per-class twin flows
// inject packets at identical instants).
class CbrFlowSource {
 public:
  CbrFlowSource(Simulator& sim, PacketIdAllocator& ids, ClassId cls,
                FlowId flow, std::uint32_t count, std::uint32_t size_bytes,
                SimTime interval, PacketHandler handler);

  CbrFlowSource(const CbrFlowSource&) = delete;
  CbrFlowSource& operator=(const CbrFlowSource&) = delete;

  void start(SimTime at);

  std::uint64_t packets_emitted() const noexcept;
  bool finished() const noexcept;

 private:
  struct State;
  std::shared_ptr<State> state_;
};

}  // namespace pds
