#include "traffic/token_bucket.hpp"

#include <algorithm>

#include "util/contracts.hpp"

namespace pds {

void TokenBucketConfig::validate() const {
  PDS_CHECK(rate > 0.0, "token rate must be positive");
  PDS_CHECK(burst_bytes > 0.0, "burst must be positive");
}

TokenBucketShaper::TokenBucketShaper(Simulator& sim, TokenBucketConfig config,
                                     PacketHandler out)
    : sim_(sim),
      config_(config),
      out_(std::move(out)),
      tokens_(config.start_full ? config.burst_bytes : 0.0),
      last_update_(sim.now()) {
  config.validate();
  PDS_CHECK(static_cast<bool>(out_), "null output handler");
}

double TokenBucketShaper::tokens(SimTime now) const {
  PDS_CHECK(now >= last_update_, "clock went backwards");
  return std::min(config_.burst_bytes,
                  tokens_ + config_.rate * (now - last_update_));
}

void TokenBucketShaper::offer(Packet p) {
  PDS_CHECK(static_cast<double>(p.size_bytes) <= config_.burst_bytes,
            "packet larger than the bucket can ever hold");
  backlog_.push_back(std::move(p));
  if (!draining_) pump();
}

void TokenBucketShaper::pump() {
  // Accrue tokens, forward every head that conforms, then sleep exactly
  // until the next head's deficit is covered.
  tokens_ = tokens(sim_.now());
  last_update_ = sim_.now();
  while (!backlog_.empty() &&
         tokens_ >= static_cast<double>(backlog_.front().size_bytes)) {
    Packet p = std::move(backlog_.front());
    backlog_.pop_front();
    tokens_ -= static_cast<double>(p.size_bytes);
    ++forwarded_;
    out_(std::move(p));
  }
  if (backlog_.empty()) {
    draining_ = false;
    return;
  }
  draining_ = true;
  const double deficit =
      static_cast<double>(backlog_.front().size_bytes) - tokens_;
  PDS_REQUIRE(deficit > 0.0);
  sim_.schedule_in(deficit / config_.rate,
                   SimEvent([this] { pump(); }, "traffic.shaper"));
}

}  // namespace pds
