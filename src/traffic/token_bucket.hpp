// Token-bucket traffic shaper — the DiffServ edge-conditioning substrate.
//
// The paper's relative-differentiation architecture lives inside the IETF
// DS framework (Section 1), whose edges condition traffic before it enters
// the core. A token bucket (rate r bytes/tu, burst b bytes) admits a packet
// when the bucket holds at least its size in tokens, and otherwise delays
// it until enough tokens accrue; output is (r, b)-conformant by
// construction. The shaper preserves packet order and is lossless.
//
// Used by tests and available to scenario builders; e.g. shaping a user
// flow before injection bounds the burst a high class can slam into a WTP
// queue (the Prop. 2 starvation scenario becomes impossible for shaped
// sources with peak rate <= link rate).
#pragma once

#include <cstdint>
#include <deque>
#include <functional>

#include "dsim/simulator.hpp"
#include "packet/packet.hpp"
#include "traffic/source.hpp"

namespace pds {

struct TokenBucketConfig {
  double rate = 1.0;          // token accrual, bytes per time unit
  double burst_bytes = 1500;  // bucket depth; must fit the largest packet
  bool start_full = true;     // initial bucket level

  void validate() const;
};

class TokenBucketShaper {
 public:
  // Conformant packets are forwarded through `out` (possibly later than
  // their arrival; Packet::arrival is left for the next hop to stamp).
  TokenBucketShaper(Simulator& sim, TokenBucketConfig config,
                    PacketHandler out);

  TokenBucketShaper(const TokenBucketShaper&) = delete;
  TokenBucketShaper& operator=(const TokenBucketShaper&) = delete;

  // Offers a packet to the shaper at the current simulation time. Throws
  // std::invalid_argument if the packet can never conform (size > burst).
  void offer(Packet p);

  // Current token level (bytes), accrued up to `now`.
  double tokens(SimTime now) const;

  std::uint64_t forwarded() const noexcept { return forwarded_; }
  std::uint64_t queued() const noexcept {
    return static_cast<std::uint64_t>(backlog_.size());
  }

 private:
  void pump();

  Simulator& sim_;
  TokenBucketConfig config_;
  PacketHandler out_;
  double tokens_;
  SimTime last_update_;
  std::deque<Packet> backlog_;
  bool draining_ = false;
  std::uint64_t forwarded_ = 0;
};

}  // namespace pds
