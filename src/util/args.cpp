#include "util/args.hpp"

#include <algorithm>
#include <cstdlib>
#include <stdexcept>

#include "util/contracts.hpp"

namespace pds {

namespace {

bool looks_like_key(const std::string& s) {
  return s.size() > 2 && s[0] == '-' && s[1] == '-';
}

// Classic two-row Levenshtein; the key sets here are tiny.
std::size_t edit_distance(const std::string& a, const std::string& b) {
  std::vector<std::size_t> prev(b.size() + 1);
  std::vector<std::size_t> cur(b.size() + 1);
  for (std::size_t j = 0; j <= b.size(); ++j) prev[j] = j;
  for (std::size_t i = 1; i <= a.size(); ++i) {
    cur[0] = i;
    for (std::size_t j = 1; j <= b.size(); ++j) {
      const std::size_t sub = prev[j - 1] + (a[i - 1] == b[j - 1] ? 0 : 1);
      cur[j] = std::min({prev[j] + 1, cur[j - 1] + 1, sub});
    }
    std::swap(prev, cur);
  }
  return prev[b.size()];
}

}  // namespace

ArgParser::ArgParser(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    std::string tok = argv[i];
    if (!looks_like_key(tok)) {
      throw std::invalid_argument("unexpected positional argument: " + tok);
    }
    tok = tok.substr(2);
    std::string key;
    std::string value;
    const auto eq = tok.find('=');
    if (eq != std::string::npos) {
      key = tok.substr(0, eq);
      value = tok.substr(eq + 1);
    } else {
      key = tok;
      // `--key value` form: consume the next token iff it is not a key.
      if (i + 1 < argc && !looks_like_key(argv[i + 1])) {
        value = argv[++i];
      }
    }
    PDS_CHECK(!key.empty(), "empty option name");
    if (values_.find(key) == values_.end()) order_.push_back(key);
    values_[key] = value;  // last occurrence wins
  }
}

bool ArgParser::has(const std::string& key) const {
  return values_.find(key) != values_.end();
}

std::optional<std::string> ArgParser::raw(const std::string& key) const {
  const auto it = values_.find(key);
  if (it == values_.end()) return std::nullopt;
  return it->second;
}

std::string ArgParser::get_string(const std::string& key,
                                  std::string def) const {
  const auto v = raw(key);
  return v ? *v : def;
}

double ArgParser::get_double(const std::string& key, double def) const {
  const auto v = raw(key);
  if (!v) return def;
  try {
    std::size_t pos = 0;
    const double d = std::stod(*v, &pos);
    PDS_CHECK(pos == v->size(), "trailing characters in --" + key);
    return d;
  } catch (const std::invalid_argument&) {
    throw std::invalid_argument("--" + key + ": not a number: " + *v);
  }
}

std::int64_t ArgParser::get_int(const std::string& key,
                                std::int64_t def) const {
  const auto v = raw(key);
  if (!v) return def;
  try {
    std::size_t pos = 0;
    const std::int64_t n = std::stoll(*v, &pos);
    PDS_CHECK(pos == v->size(), "trailing characters in --" + key);
    return n;
  } catch (const std::invalid_argument&) {
    throw std::invalid_argument("--" + key + ": not an integer: " + *v);
  }
}

bool ArgParser::get_bool(const std::string& key, bool def) const {
  const auto v = raw(key);
  if (!v) return def;
  if (v->empty() || *v == "true" || *v == "1" || *v == "yes") return true;
  if (*v == "false" || *v == "0" || *v == "no") return false;
  throw std::invalid_argument("--" + key + ": not a boolean: " + *v);
}

std::vector<double> ArgParser::get_double_list(
    const std::string& key, std::vector<double> def) const {
  const auto v = raw(key);
  if (!v) return def;
  std::vector<double> out;
  std::size_t start = 0;
  while (start <= v->size()) {
    const auto comma = v->find(',', start);
    const std::string item =
        v->substr(start, comma == std::string::npos ? std::string::npos
                                                    : comma - start);
    PDS_CHECK(!item.empty(), "empty element in --" + key);
    out.push_back(std::stod(item));
    if (comma == std::string::npos) break;
    start = comma + 1;
  }
  PDS_CHECK(!out.empty(), "empty list in --" + key);
  return out;
}

std::uint32_t ArgParser::get_jobs() const {
  std::int64_t jobs = 0;
  if (has("jobs")) {
    jobs = get_int("jobs", 0);
  } else {
    const char* env = std::getenv("PDS_JOBS");
    if (env == nullptr) return 0;
    try {
      std::size_t pos = 0;
      jobs = std::stoll(env, &pos);
      PDS_CHECK(pos == std::string(env).size() && jobs >= 0,
                "PDS_JOBS must be a non-negative integer");
    } catch (const std::invalid_argument&) {
      throw std::invalid_argument(std::string("PDS_JOBS: not an integer: ") +
                                  env);
    }
  }
  PDS_CHECK(jobs >= 0, "--jobs must be >= 0 (0 = hardware concurrency)");
  return static_cast<std::uint32_t>(jobs);
}

std::vector<std::string> ArgParser::unknown_keys(
    const std::vector<std::string>& allowed) const {
  std::vector<std::string> out;
  for (const auto& k : order_) {
    if (std::find(allowed.begin(), allowed.end(), k) == allowed.end()) {
      out.push_back(k);
    }
  }
  return out;
}

void ArgParser::require_known(
    const std::vector<std::string>& allowed) const {
  const auto unknown = unknown_keys(allowed);
  if (unknown.empty()) return;
  const std::string& key = unknown.front();
  std::string msg = "unknown option --" + key;
  std::size_t best = 3;  // only hint within edit distance 2
  const std::string* hint = nullptr;
  for (const auto& candidate : allowed) {
    const std::size_t d = edit_distance(key, candidate);
    if (d < best) {
      best = d;
      hint = &candidate;
    }
  }
  if (hint != nullptr) msg += " (did you mean --" + *hint + "?)";
  throw UsageError(msg);
}

}  // namespace pds
