// Minimal command-line argument parser for the bench and example binaries.
//
// Supports `--key=value`, `--key value`, and boolean `--flag` forms. Unknown
// keys are collected so callers can reject typos. Values are converted on
// access with a caller-supplied default.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <stdexcept>
#include <string>
#include <vector>

namespace pds {

// Thrown by ArgParser::require_known for unknown --flags. Mains catch this,
// print what() plus their usage text, and exit with code 2 (usage error),
// distinct from exit 1 for runtime failures.
class UsageError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

class ArgParser {
 public:
  ArgParser(int argc, const char* const* argv);

  // True if `--key` appeared at all (with or without a value).
  bool has(const std::string& key) const;

  // Typed access; returns `def` when the key is absent. Throws
  // std::invalid_argument when the value cannot be converted.
  std::string get_string(const std::string& key, std::string def) const;
  double get_double(const std::string& key, double def) const;
  std::int64_t get_int(const std::string& key, std::int64_t def) const;
  bool get_bool(const std::string& key, bool def) const;

  // Comma-separated list of doubles, e.g. `--sdp=1,2,4,8`.
  std::vector<double> get_double_list(const std::string& key,
                                      std::vector<double> def) const;

  // Worker count for the experiment engine: `--jobs` when given, else the
  // PDS_JOBS environment variable, else 0. 0 means "auto" — the thread
  // pool resolves it to hardware_concurrency. Callers pass the result to
  // ThreadPool::set_global_workers and list "jobs" among their recognized
  // keys.
  std::uint32_t get_jobs() const;

  // Keys seen on the command line, in order of first appearance.
  const std::vector<std::string>& keys() const { return order_; }

  // Returns the keys that are not in `allowed` (for typo detection).
  std::vector<std::string> unknown_keys(
      const std::vector<std::string>& allowed) const;

  // Throws UsageError naming the first unknown key, with a
  // "(did you mean --X?)" hint when an allowed key is within edit
  // distance 2. No-op when every key is allowed.
  void require_known(const std::vector<std::string>& allowed) const;

 private:
  std::optional<std::string> raw(const std::string& key) const;

  std::map<std::string, std::string> values_;
  std::vector<std::string> order_;
};

}  // namespace pds
