#include "util/atomic_file.hpp"

#include <cstdio>
#include <exception>
#include <stdexcept>

namespace pds {

AtomicOutFile::AtomicOutFile(const std::string& path)
    : path_(path),
      tmp_path_(path + ".tmp"),
      out_(tmp_path_),
      uncaught_at_ctor_(std::uncaught_exceptions()) {
  if (!out_) throw std::runtime_error("cannot open for writing: " + path);
}

AtomicOutFile::~AtomicOutFile() {
  if (closed_) return;
  if (std::uncaught_exceptions() > uncaught_at_ctor_) {
    // Unwinding: the file is partial by definition — discard, don't publish.
    out_.close();
    std::remove(tmp_path_.c_str());
    return;
  }
  try {
    close();
  } catch (...) {
    // Destructors must not throw; the temp file was already cleaned up.
  }
}

void AtomicOutFile::close() {
  if (closed_) return;
  closed_ = true;
  out_.flush();
  const bool wrote_ok = static_cast<bool>(out_);
  out_.close();
  if (!wrote_ok) {
    std::remove(tmp_path_.c_str());
    throw std::runtime_error("write failed: " + tmp_path_);
  }
  if (std::rename(tmp_path_.c_str(), path_.c_str()) != 0) {
    std::remove(tmp_path_.c_str());
    throw std::runtime_error("cannot rename " + tmp_path_ + " to " + path_);
  }
}

void write_file_atomic(const std::string& path, const std::string& content) {
  AtomicOutFile out(path);
  out.stream() << content;
  out.close();
}

}  // namespace pds
