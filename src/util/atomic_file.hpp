// Atomic output files: tmp + rename commit, discard on unwind.
//
// Every artifact a run publishes (metrics time series, violation logs, span
// traces, run reports) must be all-or-nothing: a killed or throwing run may
// leave a stale `.tmp` behind but never a truncated file under the final
// name. AtomicOutFile generalizes the CsvWriter behavior (util/csv.hpp):
// bytes accumulate in `path + ".tmp"`, close() commits with an atomic
// rename, and a destructor running during stack unwinding removes the
// partial temp file instead of publishing it.
#pragma once

#include <fstream>
#include <string>

namespace pds {

class AtomicOutFile {
 public:
  // Opens `path + ".tmp"` for writing. Throws std::runtime_error when the
  // temp file cannot be opened.
  explicit AtomicOutFile(const std::string& path);

  // Commits (close()) unless the destructor runs during stack unwinding, in
  // which case the partial temp file is removed. Never throws.
  ~AtomicOutFile();

  AtomicOutFile(const AtomicOutFile&) = delete;
  AtomicOutFile& operator=(const AtomicOutFile&) = delete;

  std::ostream& stream() { return out_; }

  // Flushes and atomically renames the temp file onto path(). Throws
  // std::runtime_error on write or rename failure (removing the temp file).
  // No-op when already closed; writing after close is a contract violation.
  void close();

  bool closed() const noexcept { return closed_; }
  const std::string& path() const noexcept { return path_; }

 private:
  std::string path_;
  std::string tmp_path_;
  std::ofstream out_;
  int uncaught_at_ctor_;
  bool closed_ = false;
};

// One-shot convenience: writes `content` to `path + ".tmp"` and commits with
// an atomic rename. Throws std::runtime_error on failure.
void write_file_atomic(const std::string& path, const std::string& content);

}  // namespace pds
