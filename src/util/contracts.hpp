// Contract-checking helpers used across the pds library.
//
// PDS_CHECK  — validates arguments of public API entry points; throws
//              std::invalid_argument with a descriptive message on failure.
// PDS_REQUIRE— validates internal invariants that indicate a programming
//              error; throws std::logic_error. Kept on in all build types:
//              the simulator is a research tool where silent corruption is
//              far worse than the cost of a branch.
#pragma once

#include <stdexcept>
#include <string>

namespace pds::detail {

[[noreturn]] inline void throw_invalid_argument(const char* expr,
                                                const char* file, int line,
                                                const std::string& msg) {
  throw std::invalid_argument(std::string(file) + ":" + std::to_string(line) +
                              ": check failed: " + expr +
                              (msg.empty() ? "" : " — " + msg));
}

[[noreturn]] inline void throw_logic_error(const char* expr, const char* file,
                                           int line) {
  throw std::logic_error(std::string(file) + ":" + std::to_string(line) +
                         ": invariant violated: " + expr);
}

}  // namespace pds::detail

#define PDS_CHECK(cond, msg)                                             \
  do {                                                                   \
    if (!(cond))                                                         \
      ::pds::detail::throw_invalid_argument(#cond, __FILE__, __LINE__,   \
                                            (msg));                      \
  } while (0)

#define PDS_REQUIRE(cond)                                                \
  do {                                                                   \
    if (!(cond))                                                         \
      ::pds::detail::throw_logic_error(#cond, __FILE__, __LINE__);       \
  } while (0)
