#include "util/csv.hpp"

#include <cstdio>
#include <exception>
#include <stdexcept>

#include "util/contracts.hpp"

namespace pds {

CsvWriter::CsvWriter(const std::string& path,
                     const std::vector<std::string>& header)
    : path_(path),
      tmp_path_(path + ".tmp"),
      out_(tmp_path_),
      columns_(header.size()),
      uncaught_at_ctor_(std::uncaught_exceptions()) {
  PDS_CHECK(!header.empty(), "CSV needs at least one column");
  if (!out_) throw std::runtime_error("cannot open for writing: " + path);
  for (std::size_t c = 0; c < header.size(); ++c) {
    out_ << header[c] << (c + 1 == header.size() ? "\n" : ",");
  }
}

CsvWriter::~CsvWriter() {
  if (closed_) return;
  if (std::uncaught_exceptions() > uncaught_at_ctor_) {
    // Unwinding: the file is partial by definition — discard, don't publish.
    out_.close();
    std::remove(tmp_path_.c_str());
    return;
  }
  try {
    close();
  } catch (...) {
    // Destructors must not throw; the temp file was already cleaned up.
  }
}

void CsvWriter::add_row(const std::vector<double>& values) {
  PDS_CHECK(!closed_, "CSV writer already closed: " + path_);
  PDS_CHECK(values.size() == columns_, "CSV row width mismatch");
  for (std::size_t c = 0; c < values.size(); ++c) {
    out_ << values[c] << (c + 1 == values.size() ? "\n" : ",");
  }
}

void CsvWriter::add_row(const std::vector<std::string>& values) {
  PDS_CHECK(!closed_, "CSV writer already closed: " + path_);
  PDS_CHECK(values.size() == columns_, "CSV row width mismatch");
  for (std::size_t c = 0; c < values.size(); ++c) {
    out_ << values[c] << (c + 1 == values.size() ? "\n" : ",");
  }
}

void CsvWriter::close() {
  if (closed_) return;
  closed_ = true;
  out_.flush();
  const bool wrote_ok = static_cast<bool>(out_);
  out_.close();
  if (!wrote_ok) {
    std::remove(tmp_path_.c_str());
    throw std::runtime_error("write failed: " + tmp_path_);
  }
  if (std::rename(tmp_path_.c_str(), path_.c_str()) != 0) {
    std::remove(tmp_path_.c_str());
    throw std::runtime_error("cannot rename " + tmp_path_ + " to " + path_);
  }
}

}  // namespace pds
