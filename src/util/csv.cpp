#include "util/csv.hpp"

#include <stdexcept>

#include "util/contracts.hpp"

namespace pds {

CsvWriter::CsvWriter(const std::string& path,
                     const std::vector<std::string>& header)
    : path_(path), out_(path), columns_(header.size()) {
  PDS_CHECK(!header.empty(), "CSV needs at least one column");
  if (!out_) throw std::runtime_error("cannot open for writing: " + path);
  for (std::size_t c = 0; c < header.size(); ++c) {
    out_ << header[c] << (c + 1 == header.size() ? "\n" : ",");
  }
}

void CsvWriter::add_row(const std::vector<double>& values) {
  PDS_CHECK(values.size() == columns_, "CSV row width mismatch");
  for (std::size_t c = 0; c < values.size(); ++c) {
    out_ << values[c] << (c + 1 == values.size() ? "\n" : ",");
  }
}

void CsvWriter::add_row(const std::vector<std::string>& values) {
  PDS_CHECK(values.size() == columns_, "CSV row width mismatch");
  for (std::size_t c = 0; c < values.size(); ++c) {
    out_ << values[c] << (c + 1 == values.size() ? "\n" : ",");
  }
}

}  // namespace pds
