// Tiny CSV writer used by the microscopic-view benches (Figures 4 and 5) to
// dump per-packet and per-window delay series for external plotting.
//
// Crash-safe: rows accumulate in `path + ".tmp"` and close() (or the
// destructor) commits the finished file onto `path` with an atomic rename.
// An interrupted or killed run therefore never leaves a truncated CSV under
// the final name — at worst a stale .tmp, which the next run overwrites.
// When the writer is destroyed by stack unwinding (an exception in flight)
// the partial temp file is removed instead of committed.
#pragma once

#include <fstream>
#include <string>
#include <vector>

namespace pds {

class CsvWriter {
 public:
  // Opens `path + ".tmp"` for writing and emits the header row. Throws
  // std::runtime_error if the file cannot be opened.
  CsvWriter(const std::string& path, const std::vector<std::string>& header);
  ~CsvWriter();

  CsvWriter(const CsvWriter&) = delete;
  CsvWriter& operator=(const CsvWriter&) = delete;

  void add_row(const std::vector<double>& values);
  void add_row(const std::vector<std::string>& values);

  // Flushes and atomically renames the temp file onto path(). Throws
  // std::runtime_error on write or rename failure (removing the temp file).
  // Further add_row calls are invalid. No-op when already closed.
  void close();

  const std::string& path() const { return path_; }

 private:
  std::string path_;
  std::string tmp_path_;
  std::ofstream out_;
  std::size_t columns_;
  int uncaught_at_ctor_;
  bool closed_ = false;
};

}  // namespace pds
