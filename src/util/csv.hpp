// Tiny CSV writer used by the microscopic-view benches (Figures 4 and 5) to
// dump per-packet and per-window delay series for external plotting.
#pragma once

#include <fstream>
#include <string>
#include <vector>

namespace pds {

class CsvWriter {
 public:
  // Opens `path` for writing and emits the header row. Throws
  // std::runtime_error if the file cannot be opened.
  CsvWriter(const std::string& path, const std::vector<std::string>& header);

  void add_row(const std::vector<double>& values);
  void add_row(const std::vector<std::string>& values);

  const std::string& path() const { return path_; }

 private:
  std::string path_;
  std::ofstream out_;
  std::size_t columns_;
};

}  // namespace pds
