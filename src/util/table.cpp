#include "util/table.hpp"

#include <algorithm>
#include <iomanip>
#include <ostream>
#include <sstream>

#include "util/contracts.hpp"

namespace pds {

TablePrinter::TablePrinter(std::vector<std::string> header)
    : header_(std::move(header)) {
  PDS_CHECK(!header_.empty(), "table needs at least one column");
}

void TablePrinter::add_row(std::vector<std::string> row) {
  PDS_CHECK(row.size() == header_.size(),
            "row has " + std::to_string(row.size()) + " cells, expected " +
                std::to_string(header_.size()));
  rows_.push_back(std::move(row));
}

std::string TablePrinter::num(double v, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << v;
  return os.str();
}

void TablePrinter::print(std::ostream& os) const {
  std::vector<std::size_t> width(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) width[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      width[c] = std::max(width[c], row[c].size());
    }
  }
  const auto print_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << std::setw(static_cast<int>(width[c])) << row[c];
      os << (c + 1 == row.size() ? "\n" : "  ");
    }
  };
  print_row(header_);
  std::size_t total = 0;
  for (const auto w : width) total += w + 2;
  os << std::string(total > 2 ? total - 2 : total, '-') << "\n";
  for (const auto& row : rows_) print_row(row);
}

}  // namespace pds
