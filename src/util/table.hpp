// Aligned plain-text table printer used by the bench harnesses to emit
// paper-style rows (one table per figure/table in the evaluation).
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace pds {

class TablePrinter {
 public:
  // `header` defines the number of columns; every row must match it.
  explicit TablePrinter(std::vector<std::string> header);

  void add_row(std::vector<std::string> row);

  // Convenience: formats doubles with fixed precision.
  static std::string num(double v, int precision = 2);

  // Renders the table with a separator line under the header.
  void print(std::ostream& os) const;

  std::size_t num_rows() const { return rows_.size(); }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace pds
