// PacketArena unit tests: size-class rounding, freelist recycling, chunk
// reservation, and arena-backed ClassQueue/MultiClassBacklog rings.
#include <gtest/gtest.h>

#include "packet/arena.hpp"
#include "queueing/backlog.hpp"
#include "queueing/class_queue.hpp"
#include "test_helpers.hpp"

namespace pds {
namespace {

TEST(PacketArena, BlockSizesArePowersOfTwoWithAFloor) {
  EXPECT_EQ(PacketArena::block_size(1), 64u);
  EXPECT_EQ(PacketArena::block_size(64), 64u);
  EXPECT_EQ(PacketArena::block_size(65), 128u);
  EXPECT_EQ(PacketArena::block_size(128), 128u);
  EXPECT_EQ(PacketArena::block_size(1000), 1024u);
  EXPECT_EQ(PacketArena::block_size(4096), 4096u);
  EXPECT_EQ(PacketArena::block_size(4097), 8192u);
}

TEST(PacketArena, ReleasedBlockIsReusedForTheSameSizeClass) {
  PacketArena arena;
  void* a = arena.acquire(300);  // 512-byte class
  arena.release(a, 300);
  void* b = arena.acquire(400);  // same 512-byte class
  EXPECT_EQ(a, b);
  EXPECT_EQ(arena.freelist_hits(), 1u);
  EXPECT_EQ(arena.blocks_acquired(), 2u);
  EXPECT_EQ(arena.blocks_released(), 1u);
}

TEST(PacketArena, DistinctSizeClassesKeepDistinctFreelists) {
  PacketArena arena;
  void* small = arena.acquire(64);
  arena.release(small, 64);
  // A 128-byte request must not be served from the 64-byte freelist.
  void* larger = arena.acquire(128);
  EXPECT_NE(small, larger);
  EXPECT_EQ(arena.freelist_hits(), 0u);
}

TEST(PacketArena, ReserveMakesSubsequentAcquisitionsChunkFree) {
  PacketArena arena(4096);
  arena.reserve(2048);
  const auto chunks = arena.chunks_allocated();
  for (int i = 0; i < 16; ++i) arena.acquire(128);  // 16 * 128 == 2048
  EXPECT_EQ(arena.chunks_allocated(), chunks);
}

TEST(PacketArena, OversizeRequestGetsItsOwnChunk) {
  PacketArena arena(1024);
  const auto before = arena.bytes_in_chunks();
  void* big = arena.acquire(8192);
  EXPECT_NE(big, nullptr);
  EXPECT_GE(arena.bytes_in_chunks() - before, 8192u);
}

TEST(PacketArena, ManyAcquireReleaseCyclesAllocateChunksOnce) {
  PacketArena arena;
  for (int cycle = 0; cycle < 100; ++cycle) {
    void* p = arena.acquire(512);
    arena.release(p, 512);
  }
  EXPECT_EQ(arena.chunks_allocated(), 1u);
  EXPECT_EQ(arena.freelist_hits(), 99u);
}

TEST(ClassQueue, ArenaBackedRingGrowsThroughTheArena) {
  PacketArena arena;
  {
    ClassQueue q;
    q.set_arena(&arena);
    EXPECT_TRUE(q.arena_backed());
    for (std::uint64_t i = 0; i < 100; ++i) {
      q.push(testutil::packet(i, 0, 100, static_cast<double>(i)));
    }
    EXPECT_GT(arena.blocks_acquired(), 0u);
    // Growth recycled the smaller rings into the freelist.
    EXPECT_GT(arena.blocks_released(), 0u);
    for (std::uint64_t i = 0; i < 100; ++i) {
      EXPECT_EQ(q.pop().id, i);
    }
  }
  // Destruction returned the final ring too.
  EXPECT_EQ(arena.blocks_acquired(), arena.blocks_released());
}

TEST(ClassQueue, SetArenaAfterFirstPushIsRejected) {
  PacketArena arena;
  ClassQueue q;
  q.push(testutil::packet(0, 0, 100, 0.0));
  EXPECT_THROW(q.set_arena(&arena), std::invalid_argument);
}

TEST(ClassQueue, MoveTransfersArenaOwnership) {
  PacketArena arena;
  ClassQueue q;
  q.set_arena(&arena);
  q.push(testutil::packet(7, 0, 100, 0.0));
  ClassQueue moved(std::move(q));
  EXPECT_TRUE(moved.arena_backed());
  EXPECT_EQ(moved.pop().id, 7u);
}

TEST(MultiClassBacklog, ArenaBackedBacklogKeepsSoAMirrorExact) {
  PacketArena arena;
  MultiClassBacklog backlog(3, &arena);
  EXPECT_EQ(backlog.lane_count(), 4u);  // padded to kLanePad
  backlog.push(testutil::packet(0, 1, 200, 5.0));
  backlog.push(testutil::packet(1, 1, 300, 6.0));
  backlog.push(testutil::packet(2, 2, 400, 7.0));
  EXPECT_EQ(backlog.soa_mask()[0], 0u);
  EXPECT_EQ(backlog.soa_mask()[1], ~std::uint64_t{0});
  EXPECT_EQ(backlog.soa_mask()[2], ~std::uint64_t{0});
  EXPECT_EQ(backlog.soa_mask()[3], 0u);  // pad lane stays idle
  EXPECT_DOUBLE_EQ(backlog.soa_head_arrival()[1], 5.0);
  EXPECT_DOUBLE_EQ(backlog.soa_head_bytes()[1], 200.0);
  backlog.pop(1);
  EXPECT_DOUBLE_EQ(backlog.soa_head_arrival()[1], 6.0);
  EXPECT_DOUBLE_EQ(backlog.soa_head_bytes()[1], 300.0);
  backlog.pop(1);
  EXPECT_EQ(backlog.soa_mask()[1], 0u);
  EXPECT_DOUBLE_EQ(backlog.soa_head_arrival()[1], 0.0);
}

TEST(MultiClassBacklog, PopBurstMatchesRepeatedPop) {
  MultiClassBacklog a(2), b(2);
  for (std::uint64_t i = 0; i < 10; ++i) {
    a.push(testutil::packet(i, 1, 100, static_cast<double>(i)));
    b.push(testutil::packet(i, 1, 100, static_cast<double>(i)));
  }
  Packet out[4];
  const auto k = a.pop_burst(1, 4, out);
  ASSERT_EQ(k, 4u);
  for (std::uint32_t i = 0; i < k; ++i) {
    EXPECT_EQ(out[i].id, b.pop(1).id);
  }
  EXPECT_EQ(a.total_packets(), b.total_packets());
  EXPECT_EQ(a.total_bytes(), b.total_bytes());
  EXPECT_EQ(a.head_of(1).arrival, b.head_of(1).arrival);

  // Burst larger than the backlog drains what exists.
  Packet rest[16];
  EXPECT_EQ(a.pop_burst(1, 16, rest), 6u);
  EXPECT_TRUE(a.empty());
}

}  // namespace
}  // namespace pds
