#include <gtest/gtest.h>

#include <vector>

#include "sched/bpr_fluid.hpp"
#include "test_helpers.hpp"

namespace pds {
namespace {

using testutil::packet;

struct FluidDeparture {
  std::uint64_t id;
  ClassId cls;
  SimTime time;
};

struct FluidFixture {
  std::vector<FluidDeparture> out;
  BprFluidServer server;

  explicit FluidFixture(std::vector<double> sdp, double capacity = 10.0)
      : server(make_config(std::move(sdp), capacity),
               [this](const Packet& p, SimTime t) {
                 out.push_back(FluidDeparture{p.id, p.cls, t});
               }) {}

  static SchedulerConfig make_config(std::vector<double> sdp,
                                     double capacity) {
    SchedulerConfig c;
    c.sdp = std::move(sdp);
    c.link_capacity = capacity;
    return c;
  }
};

TEST(BprFluid, SingleClassBehavesLikeFifo) {
  FluidFixture f({1.0});
  f.server.arrive(packet(1, 0, 100, 0.0), 0.0);
  f.server.arrive(packet(2, 0, 200, 0.0), 0.0);
  f.server.arrive(packet(3, 0, 100, 0.0), 0.0);
  f.server.drain();
  ASSERT_EQ(f.out.size(), 3u);
  EXPECT_EQ(f.out[0].id, 1u);
  EXPECT_NEAR(f.out[0].time, 10.0, 1e-9);   // 100 B at 10 B/tu
  EXPECT_NEAR(f.out[1].time, 30.0, 1e-9);
  EXPECT_NEAR(f.out[2].time, 40.0, 1e-9);
}

TEST(BprFluid, Proposition1SimultaneousClearing) {
  // Very asymmetric backlogs and SDPs: all queues must still empty at the
  // same instant, t = total backlog / capacity.
  FluidFixture f({1.0, 2.0, 8.0});
  f.server.arrive(packet(1, 0, 1500, 0.0), 0.0);
  f.server.arrive(packet(2, 1, 40, 0.0), 0.0);
  f.server.arrive(packet(3, 2, 550, 0.0), 0.0);
  const SimTime end = f.server.drain();
  EXPECT_NEAR(end, (1500.0 + 40.0 + 550.0) / 10.0, 1e-9);
  ASSERT_EQ(f.out.size(), 3u);
  for (const auto& d : f.out) EXPECT_NEAR(d.time, end, 1e-9);
}

TEST(BprFluid, Proposition1HoldsWithQueuedTails) {
  // Multi-packet queues: heads depart earlier, but the *last* packet of
  // every backlogged queue departs exactly at the busy-period end.
  FluidFixture f({1.0, 4.0});
  f.server.arrive(packet(1, 0, 100, 0.0), 0.0);
  f.server.arrive(packet(2, 0, 300, 0.0), 0.0);
  f.server.arrive(packet(3, 1, 200, 0.0), 0.0);
  f.server.arrive(packet(4, 1, 400, 0.0), 0.0);
  const SimTime end = f.server.drain();
  EXPECT_NEAR(end, 100.0, 1e-9);  // 1000 B / 10
  SimTime last0 = 0.0, last1 = 0.0;
  for (const auto& d : f.out) {
    (d.cls == 0 ? last0 : last1) = std::max(d.cls == 0 ? last0 : last1,
                                            d.time);
  }
  EXPECT_NEAR(last0, end, 1e-9);
  EXPECT_NEAR(last1, end, 1e-9);
}

TEST(BprFluid, HigherSdpHeadDepartsFirstOnEqualBacklogs) {
  FluidFixture f({1.0, 4.0});
  f.server.arrive(packet(1, 0, 100, 0.0), 0.0);
  f.server.arrive(packet(2, 0, 100, 0.0), 0.0);
  f.server.arrive(packet(3, 1, 100, 0.0), 0.0);
  f.server.arrive(packet(4, 1, 100, 0.0), 0.0);
  f.server.drain();
  ASSERT_EQ(f.out.size(), 4u);
  // Class 1 drains at 4x the rate per byte of backlog: its head leaves
  // first.
  EXPECT_EQ(f.out[0].cls, 1u);
  EXPECT_EQ(f.out[0].id, 3u);
}

TEST(BprFluid, HeadCompletionTimeMatchesClosedForm) {
  // Two classes, equal SDP s=1, q0 = 200 (2 packets), q1 = 100 (1 packet).
  // Head of class 0 (100 B) completes when q0 drops from 200 to 100:
  //   e^{-R u} = 1/2  => u* = ln 2 / R
  //   t(u*) = (q0 (1 - e^{-Ru}) + q1 (1 - e^{-Ru})) / R = 300 * 0.5 / 10.
  FluidFixture f({1.0, 1.0});
  f.server.arrive(packet(1, 0, 100, 0.0), 0.0);
  f.server.arrive(packet(2, 0, 100, 0.0), 0.0);
  f.server.arrive(packet(3, 1, 100, 0.0), 0.0);
  f.server.drain();
  ASSERT_EQ(f.out.size(), 3u);
  EXPECT_EQ(f.out[0].id, 1u);
  EXPECT_NEAR(f.out[0].time, 15.0, 1e-9);
  // The remaining single packets clear together at Q/R = 30.
  EXPECT_NEAR(f.out[1].time, 30.0, 1e-9);
  EXPECT_NEAR(f.out[2].time, 30.0, 1e-9);
}

TEST(BprFluid, ArrivalsExtendTheBusyPeriod) {
  FluidFixture f({1.0, 1.0});
  f.server.arrive(packet(1, 0, 100, 0.0), 0.0);
  f.server.arrive(packet(2, 1, 100, 5.0), 5.0);
  const SimTime end = f.server.drain();
  // 200 B of work arriving by t=5 into a 10 B/tu server started at 0:
  // busy until t = 20.
  EXPECT_NEAR(end, 20.0, 1e-9);
  ASSERT_EQ(f.out.size(), 2u);
  EXPECT_NEAR(f.out[0].time, end, 1e-9);
  EXPECT_NEAR(f.out[1].time, end, 1e-9);
}

TEST(BprFluid, AdvanceToLeavesConsistentPartialBacklog) {
  FluidFixture f({1.0});
  f.server.arrive(packet(1, 0, 100, 0.0), 0.0);
  f.server.advance_to(4.0);
  EXPECT_NEAR(f.server.backlog_bytes(0), 60.0, 1e-9);
  EXPECT_TRUE(f.out.empty());
  f.server.advance_to(10.0);
  ASSERT_EQ(f.out.size(), 1u);
  EXPECT_NEAR(f.out[0].time, 10.0, 1e-9);
  EXPECT_TRUE(f.server.empty());
}

TEST(BprFluid, IdlePeriodsDoNotAccrueService) {
  FluidFixture f({1.0});
  f.server.arrive(packet(1, 0, 100, 0.0), 0.0);
  f.server.drain();
  f.server.arrive(packet(2, 0, 100, 50.0), 50.0);
  f.server.drain();
  ASSERT_EQ(f.out.size(), 2u);
  EXPECT_NEAR(f.out[1].time, 60.0, 1e-9);
}

TEST(BprFluid, RejectsTimeTravel) {
  FluidFixture f({1.0});
  f.server.arrive(packet(1, 0, 100, 10.0), 10.0);
  EXPECT_THROW(f.server.advance_to(5.0), std::invalid_argument);
  EXPECT_THROW(f.server.arrive(packet(2, 0, 100, 5.0), 5.0),
               std::invalid_argument);
}

TEST(BprFluid, RejectsMalformedPackets) {
  FluidFixture f({1.0, 2.0});
  EXPECT_THROW(f.server.arrive(packet(1, 7, 100, 0.0), 0.0),
               std::invalid_argument);
  EXPECT_THROW(f.server.arrive(packet(1, 0, 0, 0.0), 0.0),
               std::invalid_argument);
}

}  // namespace
}  // namespace pds
