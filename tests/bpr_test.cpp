#include <gtest/gtest.h>

#include "sched/bpr.hpp"
#include "test_helpers.hpp"

namespace pds {
namespace {

using testutil::packet;

BprScheduler make_bpr(std::vector<double> sdp, double capacity = 10.0) {
  SchedulerConfig c;
  c.sdp = std::move(sdp);
  c.link_capacity = capacity;
  return BprScheduler(c);
}

TEST(Bpr, RequiresLinkCapacity) {
  SchedulerConfig c;
  c.sdp = {1.0, 2.0};
  EXPECT_THROW(BprScheduler{c}, std::invalid_argument);
}

TEST(Bpr, RatesFollowWeightedBacklogsAfterDeparture) {
  auto bpr = make_bpr({1.0, 3.0});
  bpr.enqueue(packet(1, 0, 300, 0.0), 0.0);
  bpr.enqueue(packet(2, 0, 300, 0.0), 0.0);
  bpr.enqueue(packet(3, 1, 100, 0.0), 0.0);
  bpr.enqueue(packet(4, 1, 100, 0.0), 0.0);
  // First dequeue: new heads => virtual service 0; remaining = L. Class 1
  // head (100 B) has the least remaining work.
  const auto first = bpr.dequeue(0.0);
  ASSERT_TRUE(first.has_value());
  EXPECT_EQ(first->cls, 1u);
  // Post-departure backlogs: q0 = 600, q1 = 100.
  // r_i = R * s_i q_i / sum: denom = 600 + 300 = 900.
  EXPECT_NEAR(bpr.rate(0), 10.0 * 600.0 / 900.0, 1e-12);
  EXPECT_NEAR(bpr.rate(1), 10.0 * 300.0 / 900.0, 1e-12);
}

TEST(Bpr, RatesSumToCapacityWhileBacklogged) {
  auto bpr = make_bpr({1.0, 2.0, 4.0});
  for (int i = 0; i < 9; ++i) {
    bpr.enqueue(packet(static_cast<std::uint64_t>(i),
                       static_cast<ClassId>(i % 3), 100, 0.0),
                0.0);
  }
  bpr.dequeue(0.0);
  EXPECT_NEAR(bpr.rate(0) + bpr.rate(1) + bpr.rate(2), 10.0, 1e-12);
}

TEST(Bpr, EmptyClassHasZeroRate) {
  auto bpr = make_bpr({1.0, 2.0});
  bpr.enqueue(packet(1, 0, 100, 0.0), 0.0);
  bpr.enqueue(packet(2, 0, 100, 0.0), 0.0);
  bpr.dequeue(0.0);
  EXPECT_GT(bpr.rate(0), 0.0);
  EXPECT_DOUBLE_EQ(bpr.rate(1), 0.0);
}

TEST(Bpr, VirtualServiceAccruesBetweenDepartures) {
  // Two classes with equal SDP and equal backlog: after the first departure
  // both rates are equal; the class whose head kept waiting accrues virtual
  // service and wins the next pick even against an equal-size head.
  auto bpr = make_bpr({1.0, 1.0});
  bpr.enqueue(packet(1, 0, 100, 0.0), 0.0);
  bpr.enqueue(packet(2, 0, 100, 0.0), 0.0);
  bpr.enqueue(packet(3, 1, 100, 0.0), 0.0);
  bpr.enqueue(packet(4, 1, 100, 0.0), 0.0);
  // t=0: all v=0, remaining equal, tie -> class 1.
  EXPECT_EQ(bpr.dequeue(0.0)->cls, 1u);
  // t=10: class 0 head accrued v = r0*10 = 10*(200/300)*10... class 1's new
  // head became head at t=0 (arrived before) so it also accrues. Rates after
  // first pop: q0=200, q1=100 -> r0=20/3, r1=10/3. v0 = 66.7, v1 = 33.3.
  // Remaining: 100-66.7=33.3 vs 100-33.3=66.7 -> class 0 wins.
  EXPECT_EQ(bpr.dequeue(10.0)->cls, 0u);
}

TEST(Bpr, HeadArrivingAfterLastDepartureResetsVirtualService) {
  auto bpr = make_bpr({1.0, 1.0});
  bpr.enqueue(packet(1, 0, 100, 0.0), 0.0);
  bpr.enqueue(packet(2, 0, 100, 0.0), 0.0);
  EXPECT_EQ(bpr.dequeue(0.0)->cls, 0u);
  // Class 1 packet arrives *after* that departure; at the next decision its
  // v must be 0 while class 0's v accrued at full capacity (only backlogged
  // class => r0 = R = 10): v0 = 50 -> remaining 50 < 100.
  bpr.enqueue(packet(3, 1, 100, 2.0), 2.0);
  EXPECT_EQ(bpr.dequeue(5.0)->cls, 0u);
}

TEST(Bpr, TieOnRemainingWorkFavoursHigherClass) {
  auto bpr = make_bpr({1.0, 1.0});
  bpr.enqueue(packet(1, 0, 100, 0.0), 0.0);
  bpr.enqueue(packet(2, 1, 100, 0.0), 0.0);
  EXPECT_EQ(bpr.dequeue(0.0)->cls, 1u);
}

TEST(Bpr, SmallerRemainingWorkWinsRegardlessOfClass) {
  auto bpr = make_bpr({1.0, 2.0});
  bpr.enqueue(packet(1, 0, 40, 0.0), 0.0);
  bpr.enqueue(packet(2, 1, 1500, 0.0), 0.0);
  EXPECT_EQ(bpr.dequeue(0.0)->cls, 0u);
}

TEST(Bpr, HigherSdpGetsProportionallyHigherRate) {
  auto bpr = make_bpr({1.0, 4.0});
  bpr.enqueue(packet(1, 0, 100, 0.0), 0.0);
  bpr.enqueue(packet(2, 0, 400, 0.0), 0.0);
  bpr.enqueue(packet(3, 1, 100, 0.0), 0.0);
  bpr.enqueue(packet(4, 1, 400, 0.0), 0.0);
  const auto popped = bpr.dequeue(0.0);  // one 100 B head leaves (tie: cls 1)
  ASSERT_TRUE(popped.has_value());
  // Backlogs now 500 vs 400: r1/r0 = 4*400 / (1*500) = 3.2.
  EXPECT_NEAR(bpr.rate(1) / bpr.rate(0), 3.2, 1e-12);
}

TEST(Bpr, DrainsEverythingEventually) {
  auto bpr = make_bpr({1.0, 2.0, 4.0});
  const auto out = testutil::replay(
      bpr, 10.0,
      {{0.0, 0, 100}, {1.0, 2, 550}, {2.0, 1, 40}, {3.0, 0, 1500},
       {4.0, 2, 100}, {50.0, 1, 550}});
  EXPECT_EQ(out.size(), 6u);
}

}  // namespace
}  // namespace pds
