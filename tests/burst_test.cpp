// Burst-dequeue semantics: one scheduler decision drains up to k consecutive
// head packets of the winning class. k=1 must stay byte-identical to the
// classic per-packet transmit loop; k>1 amortizes decision and event cost
// while keeping per-packet waits measured against staggered start times.
#include <gtest/gtest.h>

#include <vector>

#include "net/scenario.hpp"
#include "sched/factory.hpp"
#include "sched/link.hpp"
#include "test_helpers.hpp"

namespace pds {
namespace {

SchedulerConfig wtp_config(std::uint32_t burst = 1) {
  SchedulerConfig config;
  config.sdp = {1.0, 2.0, 4.0, 8.0};
  config.burst = burst;
  return config;
}

std::vector<testutil::Departure> replay_burst(
    std::uint32_t burst, const std::vector<testutil::ScriptedArrival>& in) {
  auto sched = make_scheduler(SchedulerKind::kWtp, wtp_config(burst));
  Simulator sim;
  std::vector<testutil::Departure> out;
  Link link(sim, *sched, 10.0, [&](Packet&& p, SimTime wait, SimTime now) {
    out.push_back(testutil::Departure{p.id, p.cls, wait, now});
  });
  link.set_burst(burst);
  std::uint64_t id = 0;
  for (const auto& a : in) {
    sim.schedule_at(a.time, [&link, a, id]() {
      Packet p;
      p.id = id;
      p.cls = a.cls;
      p.size_bytes = a.bytes;
      p.created = a.time;
      link.arrive(std::move(p));
    });
    ++id;
  }
  sim.run();
  return out;
}

const std::vector<testutil::ScriptedArrival> kScript = {
    {0.0, 0, 100}, {0.0, 0, 100}, {0.0, 3, 100}, {1.0, 1, 100},
    {2.0, 0, 100}, {5.0, 3, 100}, {40.0, 2, 100}, {40.0, 2, 100},
};

TEST(Burst, ConfigValidatesTheBurstRange) {
  EXPECT_NO_THROW(wtp_config(1).validate());
  EXPECT_NO_THROW(wtp_config(kMaxBurst).validate());
  EXPECT_THROW(wtp_config(0).validate(), std::invalid_argument);
  EXPECT_THROW(wtp_config(kMaxBurst + 1).validate(), std::invalid_argument);
}

TEST(Burst, LinkRejectsOutOfRangeBurst) {
  auto sched = make_scheduler(SchedulerKind::kWtp, wtp_config());
  Simulator sim;
  Link link(sim, *sched, 10.0, [](Packet&&, SimTime, SimTime) {});
  EXPECT_THROW(link.set_burst(0), std::invalid_argument);
  EXPECT_THROW(link.set_burst(kMaxBurst + 1), std::invalid_argument);
  EXPECT_NO_THROW(link.set_burst(4));
  EXPECT_EQ(link.burst(), 4u);
}

TEST(Burst, BurstOfOneIsIdenticalToTheClassicLoop) {
  const auto classic = replay_burst(1, kScript);
  auto sched = make_scheduler(SchedulerKind::kWtp, wtp_config());
  std::vector<testutil::Departure> plain =
      testutil::replay(*sched, 10.0, kScript);
  ASSERT_EQ(classic.size(), plain.size());
  for (std::size_t i = 0; i < plain.size(); ++i) {
    EXPECT_EQ(classic[i].id, plain[i].id) << i;
    EXPECT_DOUBLE_EQ(classic[i].wait, plain[i].wait) << i;
    EXPECT_DOUBLE_EQ(classic[i].completed, plain[i].completed) << i;
  }
}

TEST(Burst, DrainsConsecutiveHeadPacketsWithStaggeredWaits) {
  // A blocking packet occupies the link until t=10 while four class-2
  // packets queue behind it; the burst decision at t=10 drains all four in
  // one transmission (capacity 10, 100 bytes each, done at t=50), and each
  // packet's wait is measured against its staggered start 10 + 10*i.
  std::vector<testutil::ScriptedArrival> script = {
      {0.0, 0, 100},
      {1.0, 2, 100}, {2.0, 2, 100}, {3.0, 2, 100}, {4.0, 2, 100}};
  const auto out = replay_burst(4, script);
  ASSERT_EQ(out.size(), 5u);
  EXPECT_DOUBLE_EQ(out[0].completed, 10.0);  // the blocker
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(out[i + 1].id, i + 1);
    const double start = 10.0 + 10.0 * static_cast<double>(i);
    const double arrival = 1.0 + static_cast<double>(i);
    EXPECT_DOUBLE_EQ(out[i + 1].wait, start - arrival) << i;
    EXPECT_DOUBLE_EQ(out[i + 1].completed, 50.0) << i;
  }
}

TEST(Burst, BurstStopsAtTheWinningClassBacklog) {
  // Behind a blocker, two class-3 packets and one class-0 packet queue up;
  // the burst decision at t=10 must drain exactly the two class-3 heads
  // (done at t=30), then serve class 0 (done at t=40).
  std::vector<testutil::ScriptedArrival> script = {
      {0.0, 0, 100}, {1.0, 3, 100}, {2.0, 3, 100}, {3.0, 0, 100}};
  const auto out = replay_burst(4, script);
  ASSERT_EQ(out.size(), 4u);
  EXPECT_EQ(out[1].cls, 3);
  EXPECT_EQ(out[2].cls, 3);
  EXPECT_EQ(out[3].cls, 0);
  EXPECT_DOUBLE_EQ(out[1].completed, 30.0);
  EXPECT_DOUBLE_EQ(out[2].completed, 30.0);
  EXPECT_DOUBLE_EQ(out[3].completed, 40.0);
}

TEST(Burst, WorkConservationHoldsUnderBursts) {
  const auto out = replay_burst(3, kScript);
  EXPECT_EQ(out.size(), kScript.size());
  // Per-class FIFO is preserved inside and across bursts.
  SimTime last_done[4] = {-1.0, -1.0, -1.0, -1.0};
  for (const auto& d : out) {
    EXPECT_GE(d.completed, last_done[d.cls]);
    last_done[d.cls] = d.completed;
  }
}

TEST(Burst, BaseSchedulerBurstLoopMatchesRepeatedDequeue) {
  // FCFS does not override dequeue_burst: the base loop must hand back the
  // same packets in the same order as repeated dequeue() calls.
  SchedulerConfig config;
  config.sdp = {1.0, 1.0};
  auto a = make_scheduler(SchedulerKind::kFcfs, config);
  auto b = make_scheduler(SchedulerKind::kFcfs, config);
  for (std::uint64_t i = 0; i < 6; ++i) {
    const auto cls = static_cast<ClassId>(i % 2);
    a->enqueue(testutil::packet(i, cls, 100, static_cast<double>(i)), 10.0);
    b->enqueue(testutil::packet(i, cls, 100, static_cast<double>(i)), 10.0);
  }
  Packet out[4];
  const auto k = a->dequeue_burst(10.0, out, 4);
  ASSERT_EQ(k, 4u);
  for (std::uint32_t i = 0; i < k; ++i) {
    auto p = b->dequeue(10.0);
    ASSERT_TRUE(p.has_value());
    EXPECT_EQ(out[i].id, p->id);
  }
}

// ------------------------------------------------------------- scenario

TEST(BurstScenario, ParsesTheBurstOption) {
  const auto s = parse_scenario(
      "link a capacity=10 sched=wtp sdp=1,2 burst=4\n"
      "link b capacity=10 sched=wtp sdp=1,2\n"
      "route r a b\n"
      "source renewal r class=0 gap=5 size=100\n"
      "run until=100\n");
  ASSERT_EQ(s.links.size(), 2u);
  EXPECT_EQ(s.links[0].burst, 4u);
  EXPECT_EQ(s.links[1].burst, 1u);  // default
}

TEST(BurstScenario, RejectsOutOfRangeOrFractionalBurst) {
  const char* bad[] = {
      "link a capacity=10 sched=wtp sdp=1,2 burst=0\n",
      "link a capacity=10 sched=wtp sdp=1,2 burst=65\n",
      "link a capacity=10 sched=wtp sdp=1,2 burst=1.5\n",
  };
  for (const char* text : bad) {
    const std::string full = std::string(text) +
                             "route r a\n"
                             "source renewal r class=0 gap=5 size=100\n"
                             "run until=100\n";
    EXPECT_THROW(parse_scenario(full), std::invalid_argument) << text;
  }
}

TEST(BurstScenario, BurstRunIsDeterministicAndLossFree) {
  const char* text =
      "link a capacity=39.375 sched=wtp sdp=1,2,4,8 burst=8\n"
      "route r a\n"
      "source cbr r class=0 count=200 size=441 interval=5\n"
      "source cbr r class=3 count=200 size=441 interval=5\n"
      "run until=100000\n";
  const auto r1 = run_scenario(text);
  const auto r2 = run_scenario(text);
  EXPECT_EQ(r1.total_exits, 400u);
  ASSERT_EQ(r1.route_stats.size(), r2.route_stats.size());
  for (std::size_t i = 0; i < r1.route_stats.size(); ++i) {
    EXPECT_EQ(r1.route_stats[i].packets, r2.route_stats[i].packets);
    EXPECT_DOUBLE_EQ(r1.route_stats[i].mean_delay,
                     r2.route_stats[i].mean_delay);
  }
}

}  // namespace
}  // namespace pds
