#include <gtest/gtest.h>

#include "sched/drr.hpp"
#include "sched/scfq.hpp"
#include "sched/virtual_clock.hpp"
#include "test_helpers.hpp"

namespace pds {
namespace {

using testutil::packet;
using testutil::replay;
using testutil::ScriptedArrival;

SchedulerConfig weighted_config(std::vector<double> sdp) {
  SchedulerConfig c;
  c.sdp = std::move(sdp);
  c.drr_quantum_bytes = 100.0;
  return c;
}

// --------------------------------------------------------------------- DRR

TEST(Drr, ServesByQuantumShares) {
  // Weights 1:3, quantum base 100 B, all packets 100 B. In a saturated
  // period class 1 must send ~3 packets per class-0 packet.
  DrrScheduler drr(weighted_config({1.0, 3.0}));
  for (int i = 0; i < 40; ++i) {
    drr.enqueue(packet(static_cast<std::uint64_t>(2 * i), 0, 100, 0.0), 0.0);
    drr.enqueue(packet(static_cast<std::uint64_t>(2 * i + 1), 1, 100, 0.0),
                0.0);
  }
  int served0 = 0, served1 = 0;
  for (int i = 0; i < 20; ++i) {
    const auto p = drr.dequeue(0.0);
    ASSERT_TRUE(p.has_value());
    (p->cls == 0 ? served0 : served1)++;
  }
  EXPECT_NEAR(static_cast<double>(served1) / served0, 3.0, 0.35);
}

TEST(Drr, AccumulatesDeficitForOversizedPackets) {
  // Quantum 100 B but a 250 B packet: class needs three ring visits before
  // it can send; meanwhile the other class proceeds.
  DrrScheduler drr(weighted_config({1.0, 1.0}));
  drr.enqueue(packet(1, 0, 250, 0.0), 0.0);
  drr.enqueue(packet(2, 1, 100, 0.0), 0.0);
  drr.enqueue(packet(3, 1, 100, 0.0), 0.0);
  drr.enqueue(packet(4, 1, 100, 0.0), 0.0);
  std::vector<std::uint64_t> order;
  while (const auto p = drr.dequeue(0.0)) order.push_back(p->id);
  ASSERT_EQ(order.size(), 4u);
  // Class 0 entered the ring first but cannot send until its deficit
  // reaches 250 (three visits); class 1 sends at least twice before that.
  EXPECT_EQ(order[0], 2u);
  EXPECT_EQ(order[1], 3u);
  EXPECT_TRUE(order[2] == 1u || order[3] == 1u);
}

TEST(Drr, EmptiedClassLeavesRingAndReentersFresh) {
  DrrScheduler drr(weighted_config({1.0, 1.0}));
  drr.enqueue(packet(1, 0, 100, 0.0), 0.0);
  EXPECT_EQ(drr.dequeue(0.0)->id, 1u);
  EXPECT_TRUE(drr.empty());
  EXPECT_DOUBLE_EQ(drr.deficit(0), 0.0);
  drr.enqueue(packet(2, 0, 100, 1.0), 1.0);
  EXPECT_EQ(drr.dequeue(1.0)->id, 2u);
}

TEST(Drr, DropTailKeepsRingConsistent) {
  DrrScheduler drr(weighted_config({1.0, 1.0}));
  drr.enqueue(packet(1, 0, 100, 0.0), 0.0);
  drr.enqueue(packet(2, 1, 100, 0.0), 0.0);
  const auto dropped = drr.drop_tail(0);
  ASSERT_TRUE(dropped.has_value());
  EXPECT_EQ(dropped->id, 1u);
  // Class 0 is gone from the ring; dequeue must not trip over it.
  EXPECT_EQ(drr.dequeue(0.0)->id, 2u);
  EXPECT_TRUE(drr.empty());
}

TEST(Drr, DrainsMixedTrafficThroughLink) {
  DrrScheduler drr(weighted_config({1.0, 2.0}));
  const auto out = replay(drr, 10.0,
                          {{0.0, 0, 550}, {0.5, 1, 40}, {1.0, 0, 1500},
                           {2.0, 1, 550}, {3.0, 1, 100}});
  EXPECT_EQ(out.size(), 5u);
}

// -------------------------------------------------------------------- SCFQ

TEST(Scfq, FinishTagsFollowWeightedLengths) {
  ScfqScheduler scfq(weighted_config({1.0, 4.0}));
  scfq.enqueue(packet(1, 0, 100, 0.0), 0.0);  // F = 0 + 100/1 = 100
  scfq.enqueue(packet(2, 1, 100, 0.0), 0.0);  // F = 0 + 100/4 = 25
  EXPECT_EQ(scfq.dequeue(0.0)->id, 2u);
  EXPECT_DOUBLE_EQ(scfq.virtual_time(), 25.0);
  EXPECT_EQ(scfq.dequeue(0.0)->id, 1u);
}

TEST(Scfq, LaterArrivalInheritsVirtualTime) {
  ScfqScheduler scfq(weighted_config({1.0, 1.0}));
  scfq.enqueue(packet(1, 0, 100, 0.0), 0.0);   // F = 100
  EXPECT_EQ(scfq.dequeue(0.0)->id, 1u);        // v = 100
  scfq.enqueue(packet(2, 1, 100, 1.0), 1.0);   // F = max(100, 0)+100 = 200
  scfq.enqueue(packet(3, 0, 50, 1.0), 1.0);    // F = max(100,100)+50 = 150
  EXPECT_EQ(scfq.dequeue(1.0)->id, 3u);
  EXPECT_EQ(scfq.dequeue(1.0)->id, 2u);
}

TEST(Scfq, BandwidthSharesConvergeToWeights) {
  // Saturated two-class traffic with weights 1:3 and equal packet sizes:
  // byte shares over a long busy period approach 1:3.
  ScfqScheduler scfq(weighted_config({1.0, 3.0}));
  for (int i = 0; i < 200; ++i) {
    scfq.enqueue(packet(static_cast<std::uint64_t>(2 * i), 0, 100, 0.0), 0.0);
    scfq.enqueue(packet(static_cast<std::uint64_t>(2 * i) + 1, 1, 100, 0.0),
                 0.0);
  }
  int served0 = 0, served1 = 0;
  for (int i = 0; i < 100; ++i) {
    const auto p = scfq.dequeue(0.0);
    ASSERT_TRUE(p.has_value());
    (p->cls == 0 ? served0 : served1)++;
  }
  EXPECT_NEAR(static_cast<double>(served1) / served0, 3.0, 0.3);
}

TEST(Scfq, VirtualTimeResetsWhenIdle) {
  ScfqScheduler scfq(weighted_config({1.0, 1.0}));
  scfq.enqueue(packet(1, 0, 100, 0.0), 0.0);
  scfq.dequeue(0.0);
  EXPECT_DOUBLE_EQ(scfq.virtual_time(), 0.0);  // idle reset
  // A new busy period starts from scratch: the first tag is 0 + L/w again.
  scfq.enqueue(packet(2, 1, 100, 5.0), 5.0);
  scfq.enqueue(packet(3, 0, 300, 5.0), 5.0);
  EXPECT_EQ(scfq.dequeue(5.0)->id, 2u);       // tag 100 beats tag 300
  EXPECT_DOUBLE_EQ(scfq.virtual_time(), 100.0);
}

TEST(Scfq, TieGoesToHigherClass) {
  ScfqScheduler scfq(weighted_config({1.0, 2.0}));
  scfq.enqueue(packet(1, 0, 100, 0.0), 0.0);  // F = 100
  scfq.enqueue(packet(2, 1, 200, 0.0), 0.0);  // F = 100
  EXPECT_EQ(scfq.dequeue(0.0)->cls, 1u);
}

TEST(Scfq, DropTailUnsupported) {
  ScfqScheduler scfq(weighted_config({1.0, 1.0}));
  scfq.enqueue(packet(1, 0, 100, 0.0), 0.0);
  EXPECT_FALSE(scfq.drop_tail(0).has_value());
}

// ------------------------------------------------------------ VirtualClock

TEST(VirtualClock, TagAdvancesByWeightedLength) {
  VirtualClockScheduler vc(weighted_config({1.0, 4.0}));
  vc.enqueue(packet(1, 0, 100, 0.0), 0.0);   // VC_0 = 0 + 100/1 = 100
  vc.enqueue(packet(2, 1, 100, 0.0), 0.0);   // VC_1 = 0 + 100/4 = 25
  EXPECT_DOUBLE_EQ(vc.clock(0), 100.0);
  EXPECT_DOUBLE_EQ(vc.clock(1), 25.0);
  EXPECT_EQ(vc.dequeue(0.0)->id, 2u);
  EXPECT_EQ(vc.dequeue(0.0)->id, 1u);
}

TEST(VirtualClock, IdleClassDoesNotBankCredit) {
  VirtualClockScheduler vc(weighted_config({1.0, 1.0}));
  // Class 0 idles until t = 500; its clock restarts from `now`, not from
  // zero, so it gets no retroactive advantage.
  vc.enqueue(packet(1, 0, 100, 500.0), 500.0);
  EXPECT_DOUBLE_EQ(vc.clock(0), 600.0);
}

TEST(VirtualClock, BurstyClassIsPunishedLater) {
  VirtualClockScheduler vc(weighted_config({1.0, 1.0}));
  // Class 0 bursts 5 packets at t=0: its clock runs to 500 while real time
  // stands still. A class-1 packet arriving at t=0 tags at 100 and beats
  // all but the first class-0 packet... in fact beats all queued class-0
  // packets with larger tags.
  for (std::uint64_t i = 1; i <= 5; ++i) {
    vc.enqueue(packet(i, 0, 100, 0.0), 0.0);
  }
  EXPECT_DOUBLE_EQ(vc.clock(0), 500.0);
  vc.enqueue(packet(9, 1, 100, 0.0), 0.0);   // tag 100
  EXPECT_EQ(vc.dequeue(0.0)->id, 9u);        // tie at 100 -> higher class
  EXPECT_EQ(vc.dequeue(0.0)->id, 1u);        // class-0 head, tag 100
  // The rest of the burst carries tags 200..500; each fresh class-1
  // arrival tags at its own pace and keeps overtaking it.
  vc.enqueue(packet(10, 1, 100, 0.0), 0.0);  // VC_1 = 100 + 100 = 200
  EXPECT_EQ(vc.dequeue(0.0)->id, 10u);       // tie at 200 -> higher class
}

TEST(VirtualClock, SaturatedSharesFollowWeights) {
  VirtualClockScheduler vc(weighted_config({1.0, 3.0}));
  for (int i = 0; i < 200; ++i) {
    vc.enqueue(packet(static_cast<std::uint64_t>(2 * i), 0, 100, 0.0), 0.0);
    vc.enqueue(packet(static_cast<std::uint64_t>(2 * i) + 1, 1, 100, 0.0),
               0.0);
  }
  int served0 = 0, served1 = 0;
  for (int i = 0; i < 100; ++i) {
    const auto p = vc.dequeue(0.0);
    ASSERT_TRUE(p.has_value());
    (p->cls == 0 ? served0 : served1)++;
  }
  EXPECT_NEAR(static_cast<double>(served1) / served0, 3.0, 0.3);
}

TEST(VirtualClock, DropTailUnsupported) {
  VirtualClockScheduler vc(weighted_config({1.0, 1.0}));
  vc.enqueue(packet(1, 0, 100, 0.0), 0.0);
  EXPECT_FALSE(vc.drop_tail(0).has_value());
}

}  // namespace
}  // namespace pds
