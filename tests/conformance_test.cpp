// ConformanceMonitor unit tests: window mechanics, thresholds, min-sample
// feasibility, fault-episode attribution, metrics binding, and the
// violation JSONL log.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "obs/conformance.hpp"
#include "obs/metrics.hpp"

namespace pds {
namespace {

struct TempFile {
  explicit TempFile(const std::string& name)
      : path(testing::TempDir() + name) {}
  ~TempFile() { std::remove(path.c_str()); }
  std::string path;
};

ConformanceOptions opts(SimTime tau, double tolerance = 0.25,
                        std::uint64_t min_samples = 1, SimTime start = 0.0) {
  ConformanceOptions o;
  o.tau = tau;
  o.start = start;
  o.tolerance = tolerance;
  o.min_samples = min_samples;
  return o;
}

// Feeds `per_class` samples of each class with the given delays into the
// window containing `t`.
void feed(ConformanceMonitor& m, const std::vector<double>& delays,
          SimTime t, int per_class = 1) {
  for (int k = 0; k < per_class; ++k) {
    for (ClassId c = 0; c < delays.size(); ++c) {
      m.record(c, delays[c], t);
    }
  }
}

TEST(ConformanceMonitor, DisabledWhenTauZero) {
  ConformanceMonitor m({1.0, 2.0}, opts(0.0));
  EXPECT_FALSE(m.enabled());
  m.record(0, 1.0, 5.0);
  m.finish();
  EXPECT_EQ(m.summary().windows, 0u);
}

TEST(ConformanceMonitor, RejectsDegenerateConfigs) {
  EXPECT_THROW(ConformanceMonitor({1.0}, opts(10.0)), std::invalid_argument);
  EXPECT_THROW(ConformanceMonitor({0.0, 1.0}, opts(10.0)),
               std::invalid_argument);
}

TEST(ConformanceMonitor, PerfectRatiosProduceNoViolations) {
  // SDPs {1,2,4}: targets d0/d1 = d1/d2 = 2. Feed exactly proportional
  // delays in every window.
  ConformanceMonitor m({1.0, 2.0, 4.0}, opts(10.0));
  for (int w = 0; w < 5; ++w) {
    feed(m, {8.0, 4.0, 2.0}, 10.0 * w + 5.0);
  }
  m.finish();
  const auto s = m.summary();
  EXPECT_EQ(s.windows, 5u);
  EXPECT_EQ(s.pairs_checked, 10u);
  EXPECT_EQ(s.violations, 0u);
  EXPECT_DOUBLE_EQ(s.max_error, 0.0);
}

TEST(ConformanceMonitor, ViolationPastToleranceIsRecordedPerPair) {
  // Target d0/d1 = 2; observed 3 => error 0.5 > 0.25. Second pair is exact.
  ConformanceMonitor m({1.0, 2.0, 4.0}, opts(10.0, 0.25));
  feed(m, {12.0, 4.0, 2.0}, 5.0);
  m.finish();
  const auto s = m.summary();
  ASSERT_EQ(m.violations().size(), 1u);
  const auto& v = m.violations().front();
  EXPECT_EQ(v.lo, 0u);
  EXPECT_EQ(v.window, 0u);
  EXPECT_DOUBLE_EQ(v.observed, 3.0);
  EXPECT_DOUBLE_EQ(v.target, 2.0);
  EXPECT_DOUBLE_EQ(v.error, 0.5);
  ASSERT_EQ(s.per_pair_violations.size(), 2u);
  EXPECT_EQ(s.per_pair_violations[0], 1u);
  EXPECT_EQ(s.per_pair_violations[1], 0u);
  EXPECT_DOUBLE_EQ(s.max_error, 0.5);
}

TEST(ConformanceMonitor, ErrorAtToleranceIsNotAViolation) {
  // Observed 2.5 vs target 2 => error 0.25 == tolerance: not a violation
  // (strictly-greater contract).
  ConformanceMonitor m({1.0, 2.0}, opts(10.0, 0.25));
  feed(m, {10.0, 4.0}, 5.0);
  m.finish();
  EXPECT_EQ(m.summary().violations, 0u);
  EXPECT_DOUBLE_EQ(m.summary().max_error, 0.25);
}

TEST(ConformanceMonitor, WindowStateResetsBetweenWindows) {
  // A violating window followed by a clean one: the clean window must not
  // inherit the earlier sums.
  ConformanceMonitor m({1.0, 2.0}, opts(10.0, 0.25));
  feed(m, {20.0, 4.0}, 5.0);   // window 0: observed 5, violation
  feed(m, {8.0, 4.0}, 15.0);   // window 1: observed 2, exact
  m.finish();
  const auto s = m.summary();
  EXPECT_EQ(s.windows, 2u);
  EXPECT_EQ(s.violations, 1u);
  EXPECT_EQ(m.violations().front().window, 0u);
}

TEST(ConformanceMonitor, MinSamplesGateMarksPairsUndefined) {
  // min_samples = 3 but only one sample per class: the pair is undefined,
  // never checked, never a violation — even with a wildly wrong ratio.
  ConformanceMonitor m({1.0, 2.0}, opts(10.0, 0.25, 3));
  feed(m, {100.0, 1.0}, 5.0);
  m.finish();
  const auto s = m.summary();
  EXPECT_EQ(s.pairs_checked, 0u);
  EXPECT_EQ(s.pairs_undefined, 1u);
  EXPECT_EQ(s.violations, 0u);
}

TEST(ConformanceMonitor, WarmupStartSkipsEarlyDepartures) {
  ConformanceMonitor m({1.0, 2.0}, opts(10.0, 0.25, 1, /*start=*/100.0));
  feed(m, {30.0, 4.0}, 50.0);  // before start: ignored entirely
  feed(m, {8.0, 4.0}, 105.0);  // first window is [100, 110)
  m.finish();
  const auto s = m.summary();
  EXPECT_EQ(s.windows, 1u);
  EXPECT_EQ(s.violations, 0u);
}

TEST(ConformanceMonitor, EmptyGapFastForwardCountsWindows) {
  // Samples in window 0, a long silent stretch, then window 1000: every
  // intermediate empty window counts (with its pair undefined), exactly as
  // if each had been closed individually.
  ConformanceMonitor m({1.0, 2.0}, opts(10.0));
  feed(m, {8.0, 4.0}, 5.0);
  feed(m, {8.0, 4.0}, 10005.0);
  m.finish();
  const auto s = m.summary();
  EXPECT_EQ(s.windows, 1001u);
  EXPECT_EQ(s.pairs_checked, 2u);
  EXPECT_EQ(s.pairs_undefined, 999u);
}

TEST(ConformanceMonitor, FinishClosesPartialWindowAndIsIdempotent) {
  ConformanceMonitor m({1.0, 2.0}, opts(10.0, 0.25));
  feed(m, {12.0, 4.0}, 3.0);  // partial window, observed 3
  m.finish();
  m.finish();
  m.record(0, 99.0, 50.0);  // after finish: ignored
  EXPECT_EQ(m.summary().windows, 1u);
  EXPECT_EQ(m.summary().violations, 1u);
}

TEST(ConformanceMonitor, FaultContextStampsViolations) {
  ConformanceMonitor m({1.0, 2.0}, opts(10.0, 0.25));
  std::string active;
  m.set_fault_context([&active] { return active; });

  active = "degrade link";
  feed(m, {20.0, 4.0}, 5.0);
  m.record(1, 4.0, 10.0);  // crosses the boundary while the fault is active
  active = "";
  feed(m, {20.0, 4.0}, 15.0);
  m.finish();

  const auto s = m.summary();
  ASSERT_EQ(m.violations().size(), 2u);
  EXPECT_EQ(m.violations()[0].fault, "degrade link");
  EXPECT_EQ(m.violations()[1].fault, "");
  EXPECT_EQ(s.violations_during_faults, 1u);
}

TEST(ConformanceMonitor, SinkSeesViolationsAsTheyHappen) {
  ConformanceMonitor m({1.0, 2.0}, opts(10.0, 0.25));
  std::vector<std::uint64_t> windows;
  m.set_violation_sink([&windows](const ConformanceViolation& v) {
    windows.push_back(v.window);
  });
  feed(m, {20.0, 4.0}, 5.0);
  feed(m, {20.0, 4.0}, 15.0);
  m.finish();
  ASSERT_EQ(windows.size(), 2u);
  EXPECT_EQ(windows[0], 0u);
  EXPECT_EQ(windows[1], 1u);
}

TEST(ConformanceMonitor, BindsGaugesAndViolationCounter) {
  MetricsRegistry reg;
  ConformanceMonitor m({1.0, 2.0}, opts(10.0, 0.25));
  m.bind_metrics(reg);
  feed(m, {12.0, 4.0}, 5.0);  // observed 3, error 0.5: violation
  m.finish();
  EXPECT_DOUBLE_EQ(reg.gauge("conformance.err.c0_c1").value(), 0.5);
  EXPECT_EQ(reg.counter("conformance.violations").total(), 1u);
}

TEST(ConformanceMonitor, ClassNamerRenamesMetricKeys) {
  MetricsRegistry reg;
  ConformanceMonitor m({1.0, 2.0}, opts(10.0));
  m.set_class_namer([](ClassId c) { return "k" + std::to_string(c + 1); });
  m.bind_metrics(reg);
  EXPECT_NO_THROW(reg.gauge("conformance.err.k1_k2"));
  EXPECT_EQ(reg.size(), 2u);  // one pair gauge + the violation counter
}

TEST(ViolationLog, WritesJsonlAndCommitsOnClose) {
  TempFile file("conformance_viol.jsonl");
  ConformanceMonitor m({1.0, 2.0}, opts(10.0, 0.25));
  {
    ViolationLog log(file.path);
    m.set_violation_sink(
        [&log](const ConformanceViolation& v) { log.write(v); });
    feed(m, {12.0, 4.0}, 5.0);
    m.finish();
    // Not yet visible under the final name (atomic tmp + rename).
    std::ifstream before(file.path);
    EXPECT_FALSE(before.good());
    log.close();
    EXPECT_EQ(log.written(), 1u);
  }
  std::ifstream in(file.path);
  ASSERT_TRUE(in.good());
  std::string line;
  ASSERT_TRUE(std::getline(in, line));
  EXPECT_NE(line.find("\"window\":0"), std::string::npos);
  EXPECT_NE(line.find("\"lo\":\"c0\""), std::string::npos);
  EXPECT_NE(line.find("\"observed\":3"), std::string::npos);
  EXPECT_NE(line.find("\"target\":2"), std::string::npos);
  EXPECT_FALSE(std::getline(in, line));
}

}  // namespace
}  // namespace pds
