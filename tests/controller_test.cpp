// Adaptive differentiation: the ctrl/ Controller feedback loop from the
// live Eq. 2 conformance errors to the scheduler's weights / HPD's g.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "ctrl/controller.hpp"
#include "obs/conformance.hpp"
#include "sched/factory.hpp"
#include "sched/link.hpp"
#include "sched/pad.hpp"
#include "sched/wtp.hpp"

namespace pds {
namespace {

// Two-class harness with a synthetic error signal: the monitor is fed one
// departure per class per time unit with fixed delays, so every closed
// window reports observed ratio delay0/delay1 against the operator target
// sdp[1]/sdp[0] = 2. The link carries no traffic — the controller only
// reads the monitor and pushes knobs into the link's scheduler.
struct FeedbackRun {
  std::uint64_t ticks = 0;
  std::uint64_t updates = 0;
  std::vector<double> weights;
  double g = 0.0;
  double sched_g = 0.0;  // HPD's live g after the run (0 for WTP)
};

FeedbackRun run_feedback(ControllerMode mode, SchedulerKind kind,
                         double delay0, double delay1) {
  Simulator sim;
  SchedulerConfig config;
  config.sdp = {1.0, 2.0};
  config.hpd_g = 0.5;
  WtpScheduler wtp(config);
  HpdScheduler hpd(config);
  Scheduler& sched =
      kind == SchedulerKind::kHpd ? static_cast<Scheduler&>(hpd) : wtp;
  Link link(sim, sched, 100.0, [](Packet&&, SimTime, SimTime) {});

  ConformanceOptions opts;
  opts.tau = 10.0;
  opts.min_samples = 1;
  ConformanceMonitor monitor(config.sdp, opts);
  // One sample per class per time unit; the record at 10.5, 20.5, ...
  // closes the preceding window, so every tick (period 12 > tau) sees a
  // freshly closed window.
  for (std::uint64_t k = 0; k < 60; ++k) {
    const SimTime t = 0.5 + static_cast<double>(k);
    sim.schedule_at(t, [&monitor, delay0, delay1, t] {
      monitor.record(0, delay0, t);
      monitor.record(1, delay1, t);
    });
  }

  ControllerConfig cc;
  cc.mode = mode;
  cc.period = 12.0;
  Controller controller(sim, link, monitor, config.sdp, cc);
  controller.arm(60.0);
  sim.run();

  FeedbackRun out;
  out.ticks = controller.ticks();
  out.updates = controller.updates();
  out.weights = controller.weights();
  out.g = controller.g();
  if (kind == SchedulerKind::kHpd) out.sched_g = hpd.g();
  return out;
}

TEST(Controller, ValidateRejectsMalformedConfigs) {
  ControllerConfig c;
  c.mode = ControllerMode::kWeights;
  c.period = 0.0;
  EXPECT_THROW(c.validate(), std::invalid_argument);
  c.period = 10.0;
  c.slo = 0.0;
  EXPECT_THROW(c.validate(), std::invalid_argument);
  c.slo = 0.1;
  c.eta = 0.0;
  EXPECT_THROW(c.validate(), std::invalid_argument);
  c.eta = 0.5;
  c.g_min = 0.8;
  c.g_max = 0.2;
  EXPECT_THROW(c.validate(), std::invalid_argument);
  c.g_min = 0.05;
  c.g_max = 1.0;
  EXPECT_NO_THROW(c.validate());
  // Disabled configs skip validation entirely.
  ControllerConfig off;
  off.period = -1.0;
  EXPECT_NO_THROW(off.validate());
}

TEST(Controller, ModeNamesRoundTrip) {
  for (const auto mode : {ControllerMode::kOff, ControllerMode::kWeights,
                          ControllerMode::kHpdG}) {
    EXPECT_EQ(controller_mode_from_string(to_string(mode)), mode);
  }
  EXPECT_THROW(controller_mode_from_string("pid"), std::invalid_argument);
}

TEST(Controller, WeightsModeWidensUnderDifferentiatedRatios) {
  // Equal delays => observed ratio 1 against target 2 (e = -0.5): the loop
  // must widen the weight ratio to push the pair apart.
  const auto run = run_feedback(ControllerMode::kWeights,
                                SchedulerKind::kWtp, 1.0, 1.0);
  EXPECT_GE(run.ticks, 4u);
  EXPECT_GE(run.updates, 3u);
  ASSERT_EQ(run.weights.size(), 2u);
  EXPECT_DOUBLE_EQ(run.weights[0], 1.0);  // anchored at the operator w_0
  EXPECT_GT(run.weights[1], 2.0);
}

TEST(Controller, WeightsModeHoldsWhenConformant) {
  // Delays exactly on target (2:1) => zero error => no updates, and the
  // pushed weights stay the operator SDP.
  const auto run = run_feedback(ControllerMode::kWeights,
                                SchedulerKind::kWtp, 2.0, 1.0);
  EXPECT_GE(run.ticks, 4u);
  EXPECT_EQ(run.updates, 0u);
  EXPECT_EQ(run.weights, (std::vector<double>{1.0, 2.0}));
}

TEST(Controller, TicksWithoutAFreshWindowDoNotAct) {
  Simulator sim;
  SchedulerConfig config;
  config.sdp = {1.0, 2.0};
  WtpScheduler sched(config);
  Link link(sim, sched, 100.0, [](Packet&&, SimTime, SimTime) {});
  ConformanceOptions opts;
  opts.tau = 10.0;
  ConformanceMonitor monitor(config.sdp, opts);  // never fed: no windows
  ControllerConfig cc;
  cc.mode = ControllerMode::kWeights;
  cc.period = 12.0;
  Controller controller(sim, link, monitor, config.sdp, cc);
  controller.arm(60.0);
  sim.run();
  EXPECT_GE(controller.ticks(), 4u);
  EXPECT_EQ(controller.updates(), 0u);
}

TEST(Controller, HpdGModeStepsUpWhenOutOfBand) {
  // Worst |e| = 0.5 > slo: every update steps g toward pure WTP, and the
  // live scheduler sees each step.
  const auto run = run_feedback(ControllerMode::kHpdG,
                                SchedulerKind::kHpd, 1.0, 1.0);
  EXPECT_GE(run.updates, 3u);
  EXPECT_GT(run.g, 0.5);
  EXPECT_DOUBLE_EQ(run.sched_g, run.g);
}

TEST(Controller, HpdGModeRelaxesWhenWellInsideTheBand) {
  // Worst |e| = 0 < slo/2: g relaxes toward PAD, bounded below by g_min.
  const auto run = run_feedback(ControllerMode::kHpdG,
                                SchedulerKind::kHpd, 2.0, 1.0);
  EXPECT_GE(run.updates, 3u);
  EXPECT_LT(run.g, 0.5);
  EXPECT_GE(run.g, 0.05);
  EXPECT_DOUBLE_EQ(run.sched_g, run.g);
}

TEST(Controller, HpdGModeSkipsNonHpdSchedulers) {
  // After a swap away from HPD there is nothing to steer; the tick is a
  // deterministic no-op rather than an error.
  const auto run = run_feedback(ControllerMode::kHpdG,
                                SchedulerKind::kWtp, 1.0, 1.0);
  EXPECT_GE(run.ticks, 4u);
  EXPECT_EQ(run.updates, 0u);
  EXPECT_DOUBLE_EQ(run.g, 0.0);
}

TEST(Controller, FeedbackLoopIsDeterministic) {
  const auto a = run_feedback(ControllerMode::kWeights,
                              SchedulerKind::kWtp, 1.0, 1.0);
  const auto b = run_feedback(ControllerMode::kWeights,
                              SchedulerKind::kWtp, 1.0, 1.0);
  EXPECT_EQ(a.ticks, b.ticks);
  EXPECT_EQ(a.updates, b.updates);
  EXPECT_EQ(a.weights, b.weights);
}

TEST(Controller, RequiresAnEnabledMonitor) {
  Simulator sim;
  SchedulerConfig config;
  config.sdp = {1.0, 2.0};
  WtpScheduler sched(config);
  Link link(sim, sched, 100.0, [](Packet&&, SimTime, SimTime) {});
  ConformanceMonitor disabled(config.sdp, ConformanceOptions{});
  ControllerConfig cc;
  cc.mode = ControllerMode::kWeights;
  cc.period = 10.0;
  EXPECT_THROW(Controller(sim, link, disabled, config.sdp, cc),
               std::invalid_argument);
}

}  // namespace
}  // namespace pds
