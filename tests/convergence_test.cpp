// Statistical convergence tests for the paper's headline behaviours. These
// use moderate run lengths and generous tolerances: the goal is the *shape*
// (who converges, to what, and who is more accurate), not absolute numbers.
#include <gtest/gtest.h>

#include <cmath>

#include "core/study_a.hpp"

namespace pds {
namespace {

StudyAConfig heavy(SchedulerKind kind, std::uint64_t seed = 21) {
  StudyAConfig c;
  c.scheduler = kind;
  c.utilization = 0.95;
  c.sim_time = 4.0e5;
  c.seed = seed;
  return c;
}

double max_abs_ratio_error(const std::vector<double>& ratios,
                           double target) {
  double worst = 0.0;
  for (const double r : ratios) {
    worst = std::max(worst, std::abs(r - target));
  }
  return worst;
}

TEST(Convergence, WtpApproachesInverseSdpRatiosAtHeavyLoad) {
  // Paper Fig. 1a: at rho = 0.95 WTP's successive-class delay ratios sit
  // close to s_{i+1}/s_i = 2.
  const auto ratios = average_ratios_over_seeds(heavy(SchedulerKind::kWtp), 3);
  for (const double r : ratios) EXPECT_NEAR(r, 2.0, 0.35) << "WTP ratio";
}

TEST(Convergence, BprTrendsTowardTargetButLessAccurately) {
  const auto wtp = average_ratios_over_seeds(heavy(SchedulerKind::kWtp), 3);
  const auto bpr = average_ratios_over_seeds(heavy(SchedulerKind::kBpr), 3);
  for (const double r : bpr) {
    EXPECT_GT(r, 1.2) << "BPR differentiates in the right direction";
    EXPECT_LT(r, 3.2);
  }
  // The paper's comparison: WTP tracks the proportional model more
  // precisely than BPR under identical traffic.
  EXPECT_LE(max_abs_ratio_error(wtp, 2.0),
            max_abs_ratio_error(bpr, 2.0) + 0.05);
}

TEST(Convergence, ModerateLoadUnderDifferentiates) {
  // Paper: at rho = 0.70 the achieved ratio is ~1.5 against a target of 2.
  auto c = heavy(SchedulerKind::kWtp);
  c.utilization = 0.70;
  const auto ratios = average_ratios_over_seeds(c, 3);
  double mean = 0.0;
  for (const double r : ratios) mean += r;
  mean /= static_cast<double>(ratios.size());
  EXPECT_LT(mean, 1.9);
  EXPECT_GT(mean, 1.1);
}

TEST(Convergence, WiderSpacingConvergesToo) {
  // Fig. 1b: SDP ratio 4 between successive classes. The paper notes the
  // deviations grow with the spacing; convergence to 4.0 only happens at
  // the extreme-load end of the sweep (99.9%).
  auto c = heavy(SchedulerKind::kWtp);
  c.sdp = {1.0, 4.0, 16.0, 64.0};
  c.utilization = 0.999;
  const auto ratios = average_ratios_over_seeds(c, 3);
  for (const double r : ratios) EXPECT_NEAR(r, 4.0, 0.7);
  // And at 95% the ratios already exceed the narrow-spacing target 2 but
  // undershoot 4 — the paper's "deviations increase with the spacing".
  c.utilization = 0.95;
  const auto at95 = average_ratios_over_seeds(c, 3);
  for (const double r : at95) {
    EXPECT_GT(r, 2.0);
    EXPECT_LT(r, 4.0);
  }
}

TEST(Convergence, StrictPriorityOverDifferentiates) {
  // SP has no knob: its ratios blow far past any proportional target.
  const auto sp =
      average_ratios_over_seeds(heavy(SchedulerKind::kStrictPriority), 2);
  double product = 1.0;
  for (const double r : sp) product *= r;  // overall class-1/class-4 ratio
  EXPECT_GT(product, 30.0);  // proportional target would be 8
}

TEST(Convergence, WtpIsInsensitiveToLoadDistribution) {
  // Fig. 2a: WTP holds the ratio across very different class mixes.
  for (const auto& mix :
       std::vector<std::vector<double>>{{0.25, 0.25, 0.25, 0.25},
                                        {0.1, 0.2, 0.3, 0.4},
                                        {0.7, 0.1, 0.1, 0.1}}) {
    auto c = heavy(SchedulerKind::kWtp);
    c.load_fractions = mix;
    const auto ratios = average_ratios_over_seeds(c, 2);
    for (const double r : ratios) {
      EXPECT_NEAR(r, 2.0, 0.45) << "mix starting with " << mix[0];
    }
  }
}

TEST(Convergence, AdditiveSchedulerSpacesDelaysAdditively) {
  // Sec. 2.1: p_i = w_i + s_i tends to d_i - d_j = s_j - s_i in heavy
  // load. Use head starts large enough to be visible over the noise.
  // Head starts must stay small against the heavy-load delay scale
  // (hundreds of tu) or the top classes bottom out near zero delay and the
  // differences cannot be realized.
  StudyAConfig c;
  c.scheduler = SchedulerKind::kAdditiveWtp;
  c.sdp = {1.0, 50.0, 100.0, 150.0};
  c.utilization = 0.95;
  c.sim_time = 4.0e5;
  c.seed = 33;
  const auto r = run_study_a(c);
  for (std::size_t i = 0; i + 1 < 4; ++i) {
    const double diff = r.mean_delays[i] - r.mean_delays[i + 1];
    const double target = c.sdp[i + 1] - c.sdp[i];
    EXPECT_GT(diff, 0.5 * target) << "pair " << i << "/" << i + 1;
    EXPECT_LT(diff, 1.4 * target) << "pair " << i << "/" << i + 1;
  }
}

TEST(Convergence, PadHoldsRatiosAtModerateLoadWhereWtpSags) {
  // The extension schedulers' reason to exist: at rho = 0.85, where WTP
  // sags to ~1.6-1.8, PAD pins the long-term average ratios at 2.00.
  auto pad_cfg = heavy(SchedulerKind::kPad, 44);
  pad_cfg.utilization = 0.85;
  auto wtp_cfg = heavy(SchedulerKind::kWtp, 44);
  wtp_cfg.utilization = 0.85;
  const auto pad = average_ratios_over_seeds(pad_cfg, 3);
  const auto wtp = average_ratios_over_seeds(wtp_cfg, 3);
  EXPECT_LT(max_abs_ratio_error(pad, 2.0), 0.1);
  EXPECT_LT(max_abs_ratio_error(pad, 2.0), max_abs_ratio_error(wtp, 2.0));
}

TEST(Convergence, HpdTracksProportionalTargetAtHeavyLoad) {
  const auto hpd = average_ratios_over_seeds(heavy(SchedulerKind::kHpd), 2);
  for (const double r : hpd) EXPECT_NEAR(r, 2.0, 0.4);
}

TEST(Convergence, BprSawtoothNoisierThanWtp) {
  // Figures 4 vs 5: BPR's per-class delay trajectories carry much more
  // total variation than WTP's under identical traffic.
  auto wtp_cfg = heavy(SchedulerKind::kWtp, 55);
  auto bpr_cfg = heavy(SchedulerKind::kBpr, 55);
  wtp_cfg.sdp = bpr_cfg.sdp = {1.0, 2.0, 4.0};
  wtp_cfg.load_fractions = bpr_cfg.load_fractions = {0.5, 0.3, 0.2};
  const auto wtp = run_study_a(wtp_cfg);
  const auto bpr = run_study_a(bpr_cfg);
  double wtp_idx = 0.0, bpr_idx = 0.0;
  for (const double s : wtp.sawtooth_index) wtp_idx += s;
  for (const double s : bpr.sawtooth_index) bpr_idx += s;
  EXPECT_GT(bpr_idx, wtp_idx);
}

}  // namespace
}  // namespace pds
