// Runtime control plane: plan parsing, injector validation, and the live
// reconfiguration semantics (retune, class drain/add, scheduler swap, shed).
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "ctrl/control_injector.hpp"
#include "ctrl/control_plan.hpp"
#include "sched/factory.hpp"
#include "sched/link.hpp"
#include "sched/pad.hpp"
#include "sched/wtp.hpp"

namespace pds {
namespace {

Packet make_packet(std::uint64_t id, ClassId cls, std::uint32_t bytes) {
  Packet p;
  p.id = id;
  p.cls = cls;
  p.size_bytes = bytes;
  return p;
}

std::string parse_error(const std::string& text) {
  try {
    parse_control_plan(text);
  } catch (const std::invalid_argument& e) {
    return e.what();
  }
  return {};
}

// ----------------------------------------------------------------- parsing

TEST(ControlPlan, ParsesTheReferencePlan) {
  const auto plan = parse_control_plan(
      "# a full reconfiguration schedule\n"
      "seed 3\n"
      "retune core at=1e4 w=1,2,4,8\n"
      "retune core at=2e4 g=0.5          # hpd blend only\n"
      "class core at=3e4 drain=3\n"
      "class core at=3.5e4 add=3\n"
      "swap * at=4e4 sched=pad\n"
      "shed core at=5e4 for=1e3 watermark=200 sojourn=50 classes=2\n");
  EXPECT_EQ(plan.seed, 3u);
  ASSERT_EQ(plan.episodes.size(), 6u);
  EXPECT_EQ(plan.episodes[0].kind, ControlKind::kRetune);
  EXPECT_EQ(plan.episodes[0].weights, (std::vector<double>{1, 2, 4, 8}));
  EXPECT_DOUBLE_EQ(plan.episodes[0].g, 0.0);
  EXPECT_DOUBLE_EQ(plan.episodes[1].g, 0.5);
  EXPECT_TRUE(plan.episodes[1].weights.empty());
  EXPECT_EQ(plan.episodes[2].kind, ControlKind::kClass);
  EXPECT_TRUE(plan.episodes[2].drain);
  EXPECT_EQ(plan.episodes[2].cls, 3u);
  EXPECT_FALSE(plan.episodes[3].drain);
  EXPECT_EQ(plan.episodes[4].kind, ControlKind::kSwap);
  EXPECT_EQ(plan.episodes[4].target, "*");
  EXPECT_EQ(plan.episodes[4].sched, SchedulerKind::kPad);
  const auto& shed = plan.episodes[5];
  EXPECT_EQ(shed.kind, ControlKind::kShed);
  EXPECT_DOUBLE_EQ(shed.end(), 5.1e4);
  EXPECT_EQ(shed.shed.watermark_packets, 200u);
  EXPECT_DOUBLE_EQ(shed.shed.sojourn, 50.0);
  EXPECT_EQ(shed.shed.classes, 2u);
  EXPECT_EQ(shed.line, 8u);
}

TEST(ControlPlan, EmptyPlanIsLegal) {
  EXPECT_TRUE(parse_control_plan("").episodes.empty());
  EXPECT_TRUE(parse_control_plan("# comments only\n\n").episodes.empty());
  EXPECT_EQ(parse_control_plan("").seed, 1u);
}

TEST(ControlPlan, ErrorsCarryTheLineNumber) {
  EXPECT_NE(parse_error("seed 1\nfrobnicate l at=1\n")
                .find("control plan line 2: unknown directive frobnicate"),
            std::string::npos);
  EXPECT_NE(parse_error("retune l at=1 w=1,2\n\nretune at=2 w=1,2\n")
                .find("line 3: retune needs a target name"),
            std::string::npos);
  EXPECT_NE(parse_error("retune l at=1\n")
                .find("line 1: retune needs w=... and/or g=..."),
            std::string::npos);
}

TEST(ControlPlan, RejectsMalformedDirectives) {
  EXPECT_NE(parse_error("retune l at=soon w=1,2\n").find("malformed number"),
            std::string::npos);
  EXPECT_NE(parse_error("retune l at=1 w=1\n")
                .find("w needs at least two values"),
            std::string::npos);
  EXPECT_NE(parse_error("retune l at=1 w=1,0\n")
                .find("w values must be positive"),
            std::string::npos);
  EXPECT_NE(parse_error("retune l at=1 w=4,2\n")
                .find("w values must be non-decreasing"),
            std::string::npos);
  EXPECT_NE(parse_error("retune l at=1 g=0\n").find("g must be in (0, 1]"),
            std::string::npos);
  EXPECT_NE(parse_error("retune l at=1 g=1.5\n").find("g must be in (0, 1]"),
            std::string::npos);
  EXPECT_NE(parse_error("class l at=1\n")
                .find("class needs exactly one of drain=<idx> or add=<idx>"),
            std::string::npos);
  EXPECT_NE(parse_error("class l at=1 drain=0 add=1\n")
                .find("class needs exactly one of"),
            std::string::npos);
  EXPECT_NE(parse_error("class l at=1 drain=1.5\n")
                .find("class index must be a non-negative integer"),
            std::string::npos);
  EXPECT_NE(parse_error("swap l at=1\n")
                .find("missing required option sched=..."),
            std::string::npos);
  EXPECT_NE(parse_error("swap l at=1 sched=zippy\n")
                .find("unknown scheduler zippy"),
            std::string::npos);
  EXPECT_NE(parse_error("shed l at=1 for=0 watermark=10\n")
                .find("for must be positive"),
            std::string::npos);
  EXPECT_NE(parse_error("shed l at=1 for=5 watermark=0\n")
                .find("watermark must be >= 1"),
            std::string::npos);
  EXPECT_NE(parse_error("shed l at=1 for=5 watermark=10 classes=0\n")
                .find("classes must be a positive integer"),
            std::string::npos);
  EXPECT_NE(parse_error("retune l at=1 w=1,2 color=red\n")
                .find("unknown option color"),
            std::string::npos);
  EXPECT_NE(parse_error("retune l at=-1 w=1,2\n")
                .find("at must be non-negative"),
            std::string::npos);
}

TEST(ControlPlan, SwapRejectsClasslessSchedulersAtParse) {
  // Only class-based schedulers can adopt a live backlog; the parser rejects
  // the others so the error carries the plan line, not an arm() message.
  for (const std::string sched : {"fcfs", "scfq", "vc"}) {
    EXPECT_NE(parse_error("swap l at=1 sched=" + sched + "\n")
                  .find("swap sched must be one of sp|wtp|bpr|additive|pad|"
                        "hpd|drr, got " + sched),
              std::string::npos)
        << sched;
  }
}

// ------------------------------------------------------- injector validation

// Arms `plan_text` against one WTP link named "link" (4 classes, SDP
// {1,2,4,8}) and returns the arm() error text ("" when it armed cleanly).
std::string arm_error(const std::string& plan_text,
                      SchedulerKind kind = SchedulerKind::kWtp) {
  Simulator sim;
  SchedulerConfig config;
  config.sdp = {1.0, 2.0, 4.0, 8.0};
  config.link_capacity = 100.0;
  auto sched = make_scheduler(kind, config);
  Link link(sim, *sched, 100.0, [](Packet&&, SimTime, SimTime) {});
  ControlInjector inj(sim, parse_control_plan(plan_text));
  inj.attach("link", link, kind, config);
  try {
    inj.arm();
  } catch (const std::invalid_argument& e) {
    return e.what();
  }
  return {};
}

TEST(ControlInjector, RejectsUnknownTargets) {
  EXPECT_NE(arm_error("retune core at=10 w=1,2,4,8\n")
                .find("control plan: unknown target core"),
            std::string::npos);
}

TEST(ControlInjector, RejectsUnmatchedPatternsWithTheLine) {
  EXPECT_NE(arm_error("seed 1\nretune pod0* at=10 w=1,2,4,8\n")
                .find("control plan: line 2: pattern pod0* matches no "
                      "attached target"),
            std::string::npos);
}

TEST(ControlInjector, OverlapErrorNamesBothPlanLines) {
  // Instantaneous episodes conflict only when they share `at`.
  EXPECT_NE(arm_error("retune link at=10 w=1,2,4,8\n"
                      "retune link at=10 w=1,3,9,27\n")
                .find("overlapping retune episodes on link (lines 1 and 2)"),
            std::string::npos);
  EXPECT_TRUE(arm_error("retune link at=10 w=1,2,4,8\n"
                        "retune link at=11 w=1,3,9,27\n")
                  .empty());
  // Shed windows overlap as intervals.
  EXPECT_NE(arm_error("shed link at=10 for=20 watermark=5\n"
                      "# comment line\n"
                      "shed link at=25 for=20 watermark=9\n")
                .find("overlapping shed episodes on link (lines 1 and 3)"),
            std::string::npos);
  EXPECT_TRUE(arm_error("shed link at=10 for=20 watermark=5\n"
                        "shed link at=30 for=20 watermark=9\n")
                  .empty());
}

TEST(ControlInjector, ValidatesTheSchedulerTimeline) {
  // `retune g=` on a non-HPD link is rejected with the kind in force...
  EXPECT_NE(arm_error("retune link at=10 g=0.5\n")
                .find("retune g targets link, which runs wtp (not hpd)"),
            std::string::npos);
  // ...but is legal after a swap to HPD made it meaningful.
  EXPECT_TRUE(arm_error("swap link at=5 sched=hpd\n"
                        "retune link at=10 g=0.5\n")
                  .empty());
  // And a retune scheduled before the swap still sees the original kind.
  EXPECT_NE(arm_error("swap link at=20 sched=hpd\n"
                      "retune link at=10 g=0.5\n")
                .find("retune g targets link, which runs wtp (not hpd)"),
            std::string::npos);
  EXPECT_NE(arm_error("retune link at=10 w=1,2\n")
                .find("w needs 4 values (one per class), got 2"),
            std::string::npos);
  EXPECT_NE(arm_error("class link at=10 drain=4\n")
                .find("class index 4 out of range (target link has 4 "
                      "classes)"),
            std::string::npos);
  EXPECT_NE(arm_error("shed link at=10 for=5 watermark=10 classes=5\n")
                .find("shed classes=5 exceeds the 4 classes of target link"),
            std::string::npos);
}

// --------------------------------------------------- live control semantics

// A WTP link under test control: 4 classes, capacity 100 B/tu, so a 100 B
// packet transmits in exactly one time unit.
struct CtrlFixture {
  Simulator sim;
  SchedulerConfig config;
  WtpScheduler sched;
  std::vector<std::pair<ClassId, double>> departures;  // (class, time)
  Link link;

  CtrlFixture()
      : config(make_config()),
        sched(config),
        link(sim, sched, 100.0, [this](Packet&& p, SimTime, SimTime now) {
          departures.push_back({p.cls, now});
        }) {}

  static SchedulerConfig make_config() {
    SchedulerConfig c;
    c.sdp = {1.0, 2.0, 4.0, 8.0};
    c.link_capacity = 100.0;
    return c;
  }
};

TEST(ControlLive, RetunePushesNewWeightsWithoutTouchingBacklogs) {
  CtrlFixture f;
  ControlInjector inj(f.sim, parse_control_plan("retune link at=5 w=1,1,1,1\n"));
  inj.attach("link", f.link, SchedulerKind::kWtp, f.config);
  inj.arm();
  f.sim.schedule_at(1.0, [&] {
    for (std::uint64_t i = 0; i < 8; ++i) {
      f.link.arrive(make_packet(i, static_cast<ClassId>(i % 4), 100));
    }
  });
  f.sim.run();
  EXPECT_EQ(inj.retunes_applied(), 1u);
  EXPECT_EQ(inj.episodes_completed(), 1u);
  EXPECT_EQ(f.departures.size(), 8u);
  // The backlog survived the retune: every packet still departed.
  EXPECT_EQ(f.sched.total_backlog_packets(), 0u);
}

TEST(ControlLive, DrainDropsArrivalsWhileServingOutTheRing) {
  CtrlFixture f;
  ControlInjector inj(f.sim,
                      parse_control_plan("class link at=5 drain=0\n"
                                         "class link at=20 add=0\n"));
  inj.attach("link", f.link, SchedulerKind::kWtp, f.config);
  inj.arm();
  // Two class-0 packets queued before the drain (10 tu each): the second is
  // still in the ring when the drain begins and serves out normally.
  f.sim.schedule_at(1.0, [&] {
    f.link.arrive(make_packet(1, 0, 1000));
    f.link.arrive(make_packet(2, 0, 1000));
  });
  // Arrival during the drain window: dropped and counted.
  f.sim.schedule_at(10.0, [&] { f.link.arrive(make_packet(3, 0, 1000)); });
  // Arrival after `class add` re-admitted the class: transmitted.
  f.sim.schedule_at(25.0, [&] { f.link.arrive(make_packet(4, 0, 1000)); });
  f.sim.run();
  EXPECT_EQ(f.departures.size(), 3u);
  EXPECT_EQ(f.link.drain_drops(), 1u);
  EXPECT_EQ(inj.drain_drops(), 1u);
  EXPECT_EQ(inj.class_changes_applied(), 2u);
  EXPECT_TRUE(f.link.class_admitted(0));
}

TEST(ControlLive, ShedDropsLowClassesAboveTheWatermarkOnly) {
  CtrlFixture f;
  ControlInjector inj(
      f.sim,
      parse_control_plan("shed link at=5 for=20 watermark=3 classes=2\n"));
  inj.attach("link", f.link, SchedulerKind::kWtp, f.config);
  inj.arm();
  // Build a backlog of 3 queued class-3 packets (10 tu each, one more in
  // flight) so the aggregate sits at the watermark when the shed is live.
  f.sim.schedule_at(1.0, [&] {
    for (std::uint64_t i = 0; i < 4; ++i) {
      f.link.arrive(make_packet(i, 3, 1000));
    }
  });
  // At t=6 the backlog is still >= 3: classes 0 and 1 are shed, class 2 is
  // protected (classes=2 sheds only the two lowest).
  f.sim.schedule_at(6.0, [&] {
    f.link.arrive(make_packet(10, 0, 1000));
    f.link.arrive(make_packet(11, 1, 1000));
    f.link.arrive(make_packet(12, 2, 1000));
  });
  // After the window closed (t=25) nothing is shed regardless of backlog.
  f.sim.schedule_at(30.0, [&] { f.link.arrive(make_packet(13, 0, 1000)); });
  f.sim.run();
  EXPECT_EQ(f.link.shed_drops(), 2u);
  EXPECT_EQ(inj.shed_drops(), 2u);
  EXPECT_EQ(inj.sheds_applied(), 1u);
  EXPECT_EQ(inj.episodes_completed(), 1u);
  EXPECT_FALSE(f.link.shedding());
  // 4 class-3 + 1 class-2 + 1 post-window class-0 departed.
  EXPECT_EQ(f.departures.size(), 6u);
}

TEST(ControlLive, ShedBelowTheWatermarkAdmitsEverything) {
  CtrlFixture f;
  ControlInjector inj(
      f.sim,
      parse_control_plan("shed link at=5 for=20 watermark=50 classes=4\n"));
  inj.attach("link", f.link, SchedulerKind::kWtp, f.config);
  inj.arm();
  f.sim.schedule_at(6.0, [&] {
    f.link.arrive(make_packet(1, 0, 100));
    f.link.arrive(make_packet(2, 1, 100));
  });
  f.sim.run();
  EXPECT_EQ(f.link.shed_drops(), 0u);
  EXPECT_EQ(f.departures.size(), 2u);
}

TEST(ControlLive, SwapHandsTheBacklogToTheReplacement) {
  CtrlFixture f;
  ControlInjector inj(f.sim, parse_control_plan("swap link at=5 sched=pad\n"));
  inj.attach("link", f.link, SchedulerKind::kWtp, f.config);
  inj.arm();
  // Queue 6 packets across classes (10 tu each); the first is in flight at
  // the swap, the other five ride the backlog across the scheduler change.
  f.sim.schedule_at(1.0, [&] {
    for (std::uint64_t i = 0; i < 6; ++i) {
      f.link.arrive(make_packet(i, static_cast<ClassId>(i % 3), 1000));
    }
  });
  f.sim.run();
  EXPECT_EQ(inj.swaps_applied(), 1u);
  // No packet was lost in the handoff.
  EXPECT_EQ(f.departures.size(), 6u);
  // The link now serves through the swapped-in PAD instance.
  EXPECT_EQ(inj.current_scheduler("link").name(), "PAD");
  EXPECT_EQ(f.link.scheduler().name(), "PAD");
  EXPECT_EQ(f.link.scheduler().total_backlog_packets(), 0u);
}

TEST(ControlLive, SwapIsSafeMidBurst) {
  // With burst transmit the staged burst rides in the Link, not the
  // scheduler, so a swap while a burst is on the wire must lose nothing.
  Simulator sim;
  SchedulerConfig config = CtrlFixture::make_config();
  config.burst = 4;
  WtpScheduler sched(config);
  std::vector<std::uint64_t> departed;
  Link link(sim, sched, 100.0, [&](Packet&& p, SimTime, SimTime) {
    departed.push_back(p.id);
  });
  link.set_burst(4);
  ControlInjector inj(sim, parse_control_plan("swap link at=3 sched=hpd\n"));
  inj.attach("link", link, SchedulerKind::kWtp, config);
  inj.arm();
  // 8 same-class packets at t=1: the first transmits alone (done t=2), the
  // next decision stages a 4-packet burst over t=2..6 — the swap at t=3
  // lands strictly mid-burst, with packets staged in the Link.
  sim.schedule_at(1.0, [&] {
    for (std::uint64_t i = 0; i < 8; ++i) link.arrive(make_packet(i, 1, 100));
  });
  sim.run();
  EXPECT_EQ(inj.swaps_applied(), 1u);
  EXPECT_EQ(departed.size(), 8u);
  EXPECT_EQ(link.scheduler().name(), "HPD");
  EXPECT_EQ(link.scheduler().total_backlog_packets(), 0u);
}

TEST(ControlLive, SwapThenRetuneUsesTheNewScheduler) {
  CtrlFixture f;
  ControlInjector inj(f.sim,
                      parse_control_plan("swap link at=5 sched=hpd\n"
                                         "retune link at=10 g=0.25\n"));
  inj.attach("link", f.link, SchedulerKind::kWtp, f.config);
  inj.arm();
  f.sim.run();
  EXPECT_EQ(inj.swaps_applied(), 1u);
  EXPECT_EQ(inj.retunes_applied(), 1u);
  auto* hpd = dynamic_cast<HpdScheduler*>(&inj.current_scheduler("link"));
  ASSERT_NE(hpd, nullptr);
}

TEST(ControlLive, ActiveSummaryNamesOpenShedWindows) {
  CtrlFixture f;
  ControlInjector inj(
      f.sim, parse_control_plan("shed link at=5 for=10 watermark=100\n"));
  inj.attach("link", f.link, SchedulerKind::kWtp, f.config);
  inj.arm();
  std::string during, after;
  f.sim.schedule_at(7.0, [&] { during = inj.active_summary(); });
  f.sim.schedule_at(20.0, [&] { after = inj.active_summary(); });
  f.sim.run();
  EXPECT_EQ(during, "shed link");
  EXPECT_EQ(after, "");
}

TEST(ControlLive, PrefixPatternFansOutInAttachOrder) {
  Simulator sim;
  SchedulerConfig config = CtrlFixture::make_config();
  WtpScheduler s0(config), s1(config), s2(config);
  auto sink = [](Packet&&, SimTime, SimTime) {};
  Link l0(sim, s0, 100.0, sink), l1(sim, s1, 100.0, sink),
      l2(sim, s2, 100.0, sink);
  ControlInjector inj(sim,
                      parse_control_plan("retune pod0* at=5 w=1,1,1,1\n"));
  inj.attach("pod0a", l0, SchedulerKind::kWtp, config);
  inj.attach("pod0b", l1, SchedulerKind::kWtp, config);
  inj.attach("core", l2, SchedulerKind::kWtp, config);
  inj.arm();
  EXPECT_EQ(inj.scheduled_episodes(), 2u);  // pod0a + pod0b, not core
  sim.run();
  EXPECT_EQ(inj.retunes_applied(), 2u);
}

}  // namespace
}  // namespace pds
