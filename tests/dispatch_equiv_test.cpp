// Differential test for the event-dispatch refactor: the kernel's execution
// order must be bit-identical under both pending-event-set implementations.
// Runs Study A twice with the same seed — binary heap vs calendar queue —
// and asserts the PacketTracer lifecycle files are byte-identical, plus the
// aggregate results agree exactly.
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include <gtest/gtest.h>

#include "core/study_a.hpp"

namespace pds {
namespace {

struct TempFile {
  explicit TempFile(const std::string& name)
      : path(testing::TempDir() + name) {}
  ~TempFile() { std::remove(path.c_str()); }
  std::string path;
};

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(static_cast<bool>(in)) << "cannot open " << path;
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

StudyAConfig base_config() {
  StudyAConfig c;
  c.sim_time = 2.0e4;
  c.seed = 42;
  c.trace_sample = 0.05;
  return c;
}

TEST(DispatchEquivalence, HeapAndCalendarProduceByteIdenticalTraces) {
  TempFile heap_file("pds_equiv_heap.csv");
  TempFile cal_file("pds_equiv_calendar.csv");

  StudyAConfig heap_cfg = base_config();
  heap_cfg.event_queue = EventQueueKind::kBinaryHeap;
  heap_cfg.trace_out = heap_file.path;
  const StudyAResult heap = run_study_a(heap_cfg);

  StudyAConfig cal_cfg = base_config();
  cal_cfg.event_queue = EventQueueKind::kCalendar;
  cal_cfg.trace_out = cal_file.path;
  const StudyAResult cal = run_study_a(cal_cfg);

  // The traced lifecycles cover arrival/enqueue/dequeue/depart with full
  // timestamps, so byte equality pins the whole execution order.
  ASSERT_GT(heap.trace_records, 0u);
  EXPECT_EQ(heap.trace_records, cal.trace_records);
  const std::string heap_bytes = slurp(heap_file.path);
  const std::string cal_bytes = slurp(cal_file.path);
  ASSERT_FALSE(heap_bytes.empty());
  EXPECT_TRUE(heap_bytes == cal_bytes)
      << "PacketTracer output diverged between event queue kinds";

  // Aggregates must agree exactly too (same arithmetic, same order).
  EXPECT_EQ(heap.total_departures, cal.total_departures);
  ASSERT_EQ(heap.mean_delays.size(), cal.mean_delays.size());
  for (std::size_t i = 0; i < heap.mean_delays.size(); ++i) {
    EXPECT_EQ(heap.mean_delays[i], cal.mean_delays[i]) << "class " << i;
    EXPECT_EQ(heap.departures[i], cal.departures[i]) << "class " << i;
  }
}

TEST(DispatchEquivalence, HoldsForPoissonArrivalsToo) {
  TempFile heap_file("pds_equiv_heap_poisson.csv");
  TempFile cal_file("pds_equiv_calendar_poisson.csv");

  StudyAConfig heap_cfg = base_config();
  heap_cfg.arrivals = ArrivalModel::kPoisson;
  heap_cfg.seed = 7;
  heap_cfg.event_queue = EventQueueKind::kBinaryHeap;
  heap_cfg.trace_out = heap_file.path;
  const StudyAResult heap = run_study_a(heap_cfg);

  StudyAConfig cal_cfg = heap_cfg;
  cal_cfg.event_queue = EventQueueKind::kCalendar;
  cal_cfg.trace_out = cal_file.path;
  const StudyAResult cal = run_study_a(cal_cfg);

  ASSERT_GT(heap.trace_records, 0u);
  EXPECT_TRUE(slurp(heap_file.path) == slurp(cal_file.path))
      << "PacketTracer output diverged between event queue kinds";
  EXPECT_EQ(heap.total_departures, cal.total_departures);
}

// Golden-trace regression: the two-queue differential above would pass if
// both implementations drifted *together* (say, a shared kernel change
// that reorders equal-time events). Pinning the FNV-1a hash of the Study A
// trace catches that: any change to execution order, trace sampling, or
// CSV formatting shows up as a hash mismatch and must be an intentional,
// reviewed break of the determinism contract.
TEST(DispatchEquivalence, StudyATraceMatchesGoldenHash) {
  constexpr std::uint64_t kGoldenFnv1a = 0xe924853a494d050eULL;
  constexpr std::uint64_t kGoldenRecords = 292;

  for (const auto kind :
       {EventQueueKind::kBinaryHeap, EventQueueKind::kCalendar}) {
    TempFile trace_file("pds_golden_trace.csv");
    StudyAConfig cfg = base_config();
    cfg.event_queue = kind;
    cfg.trace_out = trace_file.path;
    const StudyAResult result = run_study_a(cfg);

    const std::string bytes = slurp(trace_file.path);
    std::uint64_t hash = 1469598103934665603ULL;  // FNV-1a offset basis
    for (const unsigned char c : bytes) {
      hash ^= c;
      hash *= 1099511628211ULL;  // FNV-1a prime
    }
    EXPECT_EQ(result.trace_records, kGoldenRecords)
        << "queue kind " << static_cast<int>(kind);
    EXPECT_EQ(hash, kGoldenFnv1a)
        << "queue kind " << static_cast<int>(kind)
        << ": Study A trace diverged from the golden execution order";
  }
}

}  // namespace
}  // namespace pds
