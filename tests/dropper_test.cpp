#include <gtest/gtest.h>

#include <memory>

#include "dropper/lossy_link.hpp"
#include "dropper/plr_dropper.hpp"
#include "rng/distributions.hpp"
#include "sched/wtp.hpp"
#include "traffic/source.hpp"

namespace pds {
namespace {

// ---------------------------------------------------------- LossHistory

TEST(LossHistory, InfiniteWindowCountsForever) {
  LossHistory h(2, 0);
  for (int i = 0; i < 10; ++i) h.note_arrival(0);
  h.note_drop(0);
  EXPECT_EQ(h.arrivals(0), 10u);
  EXPECT_EQ(h.drops(0), 1u);
  EXPECT_DOUBLE_EQ(h.loss_rate(0), 0.1);
  EXPECT_DOUBLE_EQ(h.loss_rate(1), 0.0);
}

TEST(LossHistory, SlidingWindowEvictsOldArrivals) {
  LossHistory h(2, 4);
  for (int i = 0; i < 10; ++i) h.note_arrival(0);
  EXPECT_EQ(h.arrivals(0), 4u);  // only the window is counted
  h.note_arrival(1);
  EXPECT_EQ(h.arrivals(0), 3u);
  EXPECT_EQ(h.arrivals(1), 1u);
}

TEST(LossHistory, WindowDropsAgeOutWithTheirArrivals) {
  LossHistory h(1, 3);
  h.note_arrival(0);
  h.note_drop(0);  // marks the newest arrival as dropped
  EXPECT_DOUBLE_EQ(h.loss_rate(0), 1.0);
  h.note_arrival(0);
  h.note_arrival(0);
  h.note_arrival(0);  // evicts the dropped event
  EXPECT_EQ(h.drops(0), 0u);
  EXPECT_DOUBLE_EQ(h.loss_rate(0), 0.0);
}

// ----------------------------------------------------------- PlrDropper

TEST(PlrDropper, RejectsBadLdps) {
  EXPECT_THROW(PlrDropper({}, 0), std::invalid_argument);
  EXPECT_THROW(PlrDropper({1.0, 2.0}, 0), std::invalid_argument);  // rising
  EXPECT_THROW(PlrDropper({1.0, 0.0}, 0), std::invalid_argument);
}

TEST(PlrDropper, PicksClassFurthestBelowItsLossTarget) {
  PlrDropper plr({2.0, 1.0}, 0);
  // 10 arrivals each; class 0 already lost 2, class 1 lost 0.
  for (int i = 0; i < 10; ++i) {
    plr.note_arrival(0);
    plr.note_arrival(1);
  }
  // Normalized: class0 = 0.2/2 = 0.1 after two drops, class1 = 0.
  const auto v1 = plr.pick_victim({true, true});
  EXPECT_EQ(*v1, 0u);  // both at 0 -> tie -> lower class
  const auto v2 = plr.pick_victim({true, true});
  // class0 now at 0.1/2 = 0.05, class1 still 0 -> class1.
  EXPECT_EQ(*v2, 1u);
}

TEST(PlrDropper, OnlyBackloggedClassesAreCandidates) {
  PlrDropper plr({2.0, 1.0}, 0);
  plr.note_arrival(0);
  plr.note_arrival(1);
  EXPECT_EQ(*plr.pick_victim({false, true}), 1u);
  EXPECT_FALSE(plr.pick_victim({false, false}).has_value());
}

TEST(PlrDropper, SteadyStateRatiosFollowLdps) {
  // Force drops on every third arrival with both classes always backlogged;
  // the per-class loss rates must converge to the 2:1 LDP ratio.
  PlrDropper plr({2.0, 1.0}, 0);
  Rng rng(5);
  for (int i = 0; i < 30000; ++i) {
    plr.note_arrival(static_cast<ClassId>(rng.uniform_index(2)));
    if (i % 3 == 0) plr.pick_victim({true, true});
  }
  const double r0 = plr.history().loss_rate(0);
  const double r1 = plr.history().loss_rate(1);
  EXPECT_NEAR(r0 / r1, 2.0, 0.1);
}

// ------------------------------------------------------------ LossyLink

struct LossyFixture {
  Simulator sim;
  PacketIdAllocator ids;
  WtpScheduler sched;
  std::uint64_t departed = 0;
  std::uint64_t dropped = 0;
  LossyLink link;

  LossyFixture(std::uint64_t buffer, DropPolicy policy,
               std::unique_ptr<PlrDropper> plr, double capacity = 100.0)
      : sched(make_config()),
        link(sim, sched, capacity, buffer, policy, std::move(plr),
             [this](Packet&&, SimTime, SimTime) { ++departed; },
             [this](const Packet&, SimTime) { ++dropped; }) {}

  static SchedulerConfig make_config() {
    SchedulerConfig c;
    c.sdp = {1.0, 2.0};
    return c;
  }

  Packet make_packet(ClassId cls, std::uint32_t bytes = 100) {
    Packet p;
    p.id = ids.next();
    p.cls = cls;
    p.size_bytes = bytes;
    p.created = sim.now();
    return p;
  }
};

TEST(LossyLink, AdmitsUntilBufferFull) {
  LossyFixture f(2, DropPolicy::kDropIncoming, nullptr);
  // First arrival goes straight into service; two more fill the buffer.
  f.link.arrive(f.make_packet(0));
  f.link.arrive(f.make_packet(0));
  f.link.arrive(f.make_packet(0));
  EXPECT_EQ(f.dropped, 0u);
  f.link.arrive(f.make_packet(0));  // buffer (2 queued) is full
  EXPECT_EQ(f.dropped, 1u);
  EXPECT_EQ(f.link.drops(0), 1u);
  f.sim.run();
  EXPECT_EQ(f.departed, 3u);
}

TEST(LossyLink, DropIncomingChargesTheArrivingClass) {
  LossyFixture f(1, DropPolicy::kDropIncoming, nullptr);
  f.link.arrive(f.make_packet(0));
  f.link.arrive(f.make_packet(0));
  f.link.arrive(f.make_packet(1));  // arrives to a full buffer
  EXPECT_EQ(f.link.drops(1), 1u);
  EXPECT_EQ(f.link.drops(0), 0u);
  EXPECT_DOUBLE_EQ(f.link.loss_rate(1), 1.0);
}

TEST(LossyLink, PlrPushesOutTheVictimTailAndAdmitsArrival) {
  auto plr = std::make_unique<PlrDropper>(std::vector<double>{2.0, 1.0}, 0);
  LossyFixture f(2, DropPolicy::kPlr, std::move(plr));
  f.link.arrive(f.make_packet(1));      // in service
  f.link.arrive(f.make_packet(0));      // queued
  f.link.arrive(f.make_packet(0));      // queued, buffer now full
  f.link.arrive(f.make_packet(1));      // overflow: victim = class 0 (tie)
  EXPECT_EQ(f.dropped, 1u);
  EXPECT_EQ(f.link.drops(0), 1u);
  EXPECT_EQ(f.sched.backlog_packets(1), 1u);  // the arrival was admitted
  EXPECT_EQ(f.sched.backlog_packets(0), 1u);
  f.sim.run();
  EXPECT_EQ(f.departed, 3u);
}

TEST(LossyLink, PlrCanDropTheArrivalItself) {
  auto plr = std::make_unique<PlrDropper>(std::vector<double>{2.0, 1.0}, 0);
  LossyFixture f(1, DropPolicy::kPlr, std::move(plr));
  f.link.arrive(f.make_packet(1));  // in service
  f.link.arrive(f.make_packet(1));  // queued (buffer full)
  f.link.arrive(f.make_packet(0));  // overflow
  // Victim choice: both classes at loss rate 0 -> tie -> lower class (0);
  // class 0 has nothing queued, so the arrival itself is the victim.
  EXPECT_EQ(f.dropped, 1u);
  EXPECT_EQ(f.link.drops(0), 1u);
  EXPECT_EQ(f.sched.backlog_packets(1), 1u);
}

TEST(LossyLink, ValidatesConstruction) {
  Simulator sim;
  SchedulerConfig c;
  c.sdp = {1.0, 2.0};
  WtpScheduler sched(c);
  const auto departure = [](Packet&&, SimTime, SimTime) {};
  const auto drop = [](const Packet&, SimTime) {};
  EXPECT_THROW(LossyLink(sim, sched, 10.0, 0, DropPolicy::kDropIncoming,
                         nullptr, departure, drop),
               std::invalid_argument);
  EXPECT_THROW(LossyLink(sim, sched, 10.0, 5, DropPolicy::kPlr, nullptr,
                         departure, drop),
               std::invalid_argument);
  auto mismatched =
      std::make_unique<PlrDropper>(std::vector<double>{1.0}, 0);
  EXPECT_THROW(LossyLink(sim, sched, 10.0, 5, DropPolicy::kPlr,
                         std::move(mismatched), departure, drop),
               std::invalid_argument);
}

TEST(LossyLink, SustainedOverloadYieldsProportionalLossRates) {
  // 2x overload, equal class loads, LDPs 2:1: loss rates must settle near
  // the 2:1 ratio while all excess traffic is shed.
  auto plr = std::make_unique<PlrDropper>(std::vector<double>{2.0, 1.0}, 0);
  LossyFixture f(64, DropPolicy::kPlr, std::move(plr), /*capacity=*/100.0);
  Rng rng(11);
  const ExponentialDist gap(0.5);  // 2 pkts/tu * 100 B = 200 B/tu vs R=100
  double t = 0.0;
  for (int i = 0; i < 60000; ++i) {
    t += gap.sample(rng);
    const auto cls = static_cast<ClassId>(rng.uniform_index(2));
    f.sim.run_until(t);
    f.link.arrive(f.make_packet(cls));
  }
  f.sim.run();
  const double r0 = f.link.loss_rate(0);
  const double r1 = f.link.loss_rate(1);
  EXPECT_GT(r1, 0.05);
  EXPECT_NEAR(r0 / r1, 2.0, 0.25);
  EXPECT_EQ(f.departed + f.dropped, 60000u);
}

}  // namespace
}  // namespace pds
