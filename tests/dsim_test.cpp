#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "dsim/simulator.hpp"

namespace pds {
namespace {

TEST(Simulator, StartsAtTimeZero) {
  Simulator sim;
  EXPECT_DOUBLE_EQ(sim.now(), 0.0);
  EXPECT_TRUE(sim.empty());
}

TEST(Simulator, ExecutesInTimeOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.schedule_at(3.0, [&] { order.push_back(3); });
  sim.schedule_at(1.0, [&] { order.push_back(1); });
  sim.schedule_at(2.0, [&] { order.push_back(2); });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_DOUBLE_EQ(sim.now(), 3.0);
}

TEST(Simulator, EqualTimesFireInFifoOrder) {
  Simulator sim;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    sim.schedule_at(5.0, [&, i] { order.push_back(i); });
  }
  sim.run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<size_t>(i)], i);
}

TEST(Simulator, ScheduleInIsRelative) {
  Simulator sim;
  double fired_at = -1.0;
  sim.schedule_at(10.0, [&] {
    sim.schedule_in(2.5, [&] { fired_at = sim.now(); });
  });
  sim.run();
  EXPECT_DOUBLE_EQ(fired_at, 12.5);
}

TEST(Simulator, RejectsPastEvents) {
  Simulator sim;
  sim.schedule_at(5.0, [] {});
  sim.run();
  EXPECT_THROW(sim.schedule_at(4.0, [] {}), std::invalid_argument);
  EXPECT_THROW(sim.schedule_in(-1.0, [] {}), std::invalid_argument);
}

TEST(Simulator, RejectsNullAction) {
  Simulator sim;
  EXPECT_THROW(sim.schedule_at(1.0, Simulator::Action{}),
               std::invalid_argument);
}

TEST(Simulator, RunUntilStopsAtHorizonAndAdvancesClock) {
  Simulator sim;
  int fired = 0;
  sim.schedule_at(1.0, [&] { ++fired; });
  sim.schedule_at(10.0, [&] { ++fired; });
  sim.run_until(5.0);
  EXPECT_EQ(fired, 1);
  EXPECT_DOUBLE_EQ(sim.now(), 5.0);  // clock reaches the horizon
  EXPECT_EQ(sim.pending_events(), 1u);
}

TEST(Simulator, EventExactlyAtHorizonFires) {
  Simulator sim;
  bool fired = false;
  sim.schedule_at(5.0, [&] { fired = true; });
  sim.run_until(5.0);
  EXPECT_TRUE(fired);
}

TEST(Simulator, RunUntilCanResume) {
  Simulator sim;
  std::vector<double> times;
  for (double t : {1.0, 4.0, 9.0}) {
    sim.schedule_at(t, [&, t] { times.push_back(t); });
  }
  sim.run_until(2.0);
  EXPECT_EQ(times.size(), 1u);
  sim.run_until(10.0);
  EXPECT_EQ(times.size(), 3u);
}

TEST(Simulator, StopExitsTheLoop) {
  Simulator sim;
  int fired = 0;
  sim.schedule_at(1.0, [&] {
    ++fired;
    sim.stop();
  });
  sim.schedule_at(2.0, [&] { ++fired; });
  sim.run();
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(sim.pending_events(), 1u);
  // A subsequent run resumes cleanly.
  sim.run();
  EXPECT_EQ(fired, 2);
}

TEST(Simulator, CountsExecutedEvents) {
  Simulator sim;
  for (int i = 0; i < 5; ++i) sim.schedule_at(i, [] {});
  sim.run();
  EXPECT_EQ(sim.executed_events(), 5u);
}

TEST(Simulator, EventsCanScheduleAtCurrentTime) {
  Simulator sim;
  std::vector<int> order;
  sim.schedule_at(1.0, [&] {
    order.push_back(1);
    sim.schedule_in(0.0, [&] { order.push_back(2); });
  });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
}

TEST(Simulator, StopDuringRunUntilDoesNotSkipPendingEvents) {
  // Regression: drain used to advance the clock to the horizon even when
  // stop() ended the run early, turning still-pending pre-horizon events
  // into "past" events and making the next run throw.
  Simulator sim;
  std::vector<double> times;
  sim.schedule_at(1.0, [&] {
    times.push_back(sim.now());
    sim.stop();
  });
  sim.schedule_at(3.0, [&] { times.push_back(sim.now()); });
  sim.run_until(10.0);
  EXPECT_DOUBLE_EQ(sim.now(), 1.0);  // clock stays at the last event
  EXPECT_EQ(sim.pending_events(), 1u);
  EXPECT_NO_THROW(sim.run_until(10.0));
  EXPECT_EQ(times, (std::vector<double>{1.0, 3.0}));
  EXPECT_DOUBLE_EQ(sim.now(), 10.0);
}

TEST(Simulator, ScheduleAtNowDuringHorizonEventFiresFifoInSameRun) {
  // The documented FIFO-at-now guarantee, at the hardest spot: an event
  // exactly at the run_until horizon scheduling more work at now().
  Simulator sim;
  std::vector<int> order;
  sim.schedule_at(5.0, [&] {
    order.push_back(1);
    sim.schedule_at(sim.now(), [&] { order.push_back(3); });
  });
  sim.schedule_at(5.0, [&] { order.push_back(2); });
  sim.run_until(5.0);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

namespace {

class RecordingMonitor final : public SimMonitor {
 public:
  void on_event_begin(SimTime, const char* label,
                      std::size_t pending) noexcept override {
    ++begins_;
    max_pending_ = std::max(max_pending_, pending);
    if (label != nullptr) labels_.push_back(label);
  }
  void on_event_end(SimTime, const char*) noexcept override { ++ends_; }

  int begins() const noexcept { return begins_; }
  int ends() const noexcept { return ends_; }
  std::size_t max_pending() const noexcept { return max_pending_; }
  const std::vector<std::string>& labels() const noexcept { return labels_; }

 private:
  int begins_ = 0;
  int ends_ = 0;
  std::size_t max_pending_ = 0;
  std::vector<std::string> labels_;
};

}  // namespace

TEST(Simulator, MonitorSeesEveryEventWithItsLabel) {
  Simulator sim;
  RecordingMonitor monitor;
  sim.set_monitor(&monitor);
  sim.schedule_at(1.0, [] {}, "alpha");
  sim.schedule_at(2.0, [] {});  // unlabeled
  sim.schedule_at(3.0, [] {}, "beta");
  sim.run();
  EXPECT_EQ(monitor.begins(), 3);
  EXPECT_EQ(monitor.ends(), 3);
  EXPECT_EQ(monitor.max_pending(), 2u);  // two still queued at first event
  EXPECT_EQ(monitor.labels(), (std::vector<std::string>{"alpha", "beta"}));
  sim.set_monitor(nullptr);
  EXPECT_EQ(sim.monitor(), nullptr);
}

TEST(PeriodicProcess, FiresAtStartAndEveryPeriod) {
  Simulator sim;
  std::vector<double> times;
  PeriodicProcess proc(sim, 2.0, 3.0,
                       [&](SimTime now) { times.push_back(now); });
  sim.run_until(11.0);
  ASSERT_EQ(times.size(), 4u);  // 2, 5, 8, 11
  EXPECT_DOUBLE_EQ(times[0], 2.0);
  EXPECT_DOUBLE_EQ(times[3], 11.0);
}

TEST(PeriodicProcess, CancelStopsFutureFirings) {
  Simulator sim;
  int count = 0;
  PeriodicProcess proc(sim, 0.0, 1.0, [&](SimTime) {
    if (++count == 3) proc.cancel();
  });
  sim.run_until(100.0);
  EXPECT_EQ(count, 3);
  EXPECT_TRUE(proc.cancelled());
}

TEST(PeriodicProcess, DestructionCancels) {
  Simulator sim;
  int count = 0;
  {
    PeriodicProcess proc(sim, 0.0, 1.0, [&](SimTime) { ++count; });
    sim.run_until(2.0);
  }
  sim.run_until(50.0);
  EXPECT_EQ(count, 3);  // 0, 1, 2 only
}

TEST(PeriodicProcess, RejectsNonPositivePeriod) {
  Simulator sim;
  EXPECT_THROW(PeriodicProcess(sim, 0.0, 0.0, [](SimTime) {}),
               std::invalid_argument);
}

}  // namespace
}  // namespace pds
