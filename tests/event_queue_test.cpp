// The two pending-event-set implementations must induce the *identical*
// execution order: ascending time, FIFO sequence within equal times.
#include <gtest/gtest.h>

#include <vector>

#include "dsim/event_queue.hpp"
#include "dsim/simulator.hpp"
#include "rng/rng.hpp"

namespace pds {
namespace {

EventItem item(SimTime t, std::uint64_t seq) {
  return EventItem{t, seq, [] {}};
}

class EventQueueKinds
    : public testing::TestWithParam<EventQueueKind> {};

TEST_P(EventQueueKinds, PopsInTimeOrder) {
  auto q = make_event_queue(GetParam());
  q->push(item(5.0, 0));
  q->push(item(1.0, 1));
  q->push(item(3.0, 2));
  EXPECT_EQ(q->size(), 3u);
  EXPECT_DOUBLE_EQ(q->next_time(), 1.0);
  EXPECT_DOUBLE_EQ(q->pop().time, 1.0);
  EXPECT_DOUBLE_EQ(q->pop().time, 3.0);
  EXPECT_DOUBLE_EQ(q->pop().time, 5.0);
  EXPECT_TRUE(q->empty());
}

TEST_P(EventQueueKinds, FifoWithinEqualTimes) {
  auto q = make_event_queue(GetParam());
  for (std::uint64_t s = 0; s < 20; ++s) q->push(item(7.0, s));
  for (std::uint64_t s = 0; s < 20; ++s) {
    EXPECT_EQ(q->pop().seq, s);
  }
}

TEST_P(EventQueueKinds, InterleavedPushPop) {
  auto q = make_event_queue(GetParam());
  q->push(item(10.0, 0));
  q->push(item(20.0, 1));
  EXPECT_DOUBLE_EQ(q->pop().time, 10.0);
  q->push(item(15.0, 2));  // between the popped head and the remainder
  q->push(item(12.0, 3));
  EXPECT_DOUBLE_EQ(q->pop().time, 12.0);
  EXPECT_DOUBLE_EQ(q->pop().time, 15.0);
  EXPECT_DOUBLE_EQ(q->pop().time, 20.0);
}

TEST_P(EventQueueKinds, SparseJumpsFarAhead) {
  // Events much more than a "year" apart exercise the calendar's direct
  // minimum fallback.
  auto q = make_event_queue(GetParam());
  q->push(item(1.0, 0));
  q->push(item(1e9, 1));
  q->push(item(2e9, 2));
  EXPECT_DOUBLE_EQ(q->pop().time, 1.0);
  EXPECT_DOUBLE_EQ(q->pop().time, 1e9);
  q->push(item(1.5e9, 3));
  EXPECT_DOUBLE_EQ(q->pop().time, 1.5e9);
  EXPECT_DOUBLE_EQ(q->pop().time, 2e9);
}

INSTANTIATE_TEST_SUITE_P(Kinds, EventQueueKinds,
                         testing::Values(EventQueueKind::kBinaryHeap,
                                         EventQueueKind::kCalendar),
                         [](const auto& param_info) {
                           return param_info.param ==
                                          EventQueueKind::kBinaryHeap
                                      ? std::string("heap")
                                      : std::string("calendar");
                         });

TEST(EventQueueDifferential, RandomWorkloadsAgreeExactly) {
  // Mixed pushes and pops with bursty times: both queues must emit the
  // same (time, seq) stream.
  for (const std::uint64_t seed : {1ULL, 2ULL, 3ULL, 4ULL}) {
    auto heap = make_event_queue(EventQueueKind::kBinaryHeap);
    auto cal = make_event_queue(EventQueueKind::kCalendar);
    Rng rng(seed);
    double now = 0.0;
    std::uint64_t seq = 0;
    for (int round = 0; round < 5000; ++round) {
      const auto op = rng.uniform_index(3);
      if (op < 2 || heap->empty()) {
        // Push: future time, occasionally far ahead, occasionally tying.
        double t = now;
        const auto style = rng.uniform_index(4);
        if (style == 0) {
          t = now;  // tie with the current time
        } else if (style == 3) {
          t = now + 1000.0 + rng.uniform01() * 1e6;
        } else {
          t = now + rng.uniform01() * 50.0;
        }
        heap->push(item(t, seq));
        cal->push(item(t, seq));
        ++seq;
      } else {
        const auto a = heap->pop();
        const auto b = cal->pop();
        EXPECT_DOUBLE_EQ(a.time, b.time);
        EXPECT_EQ(a.seq, b.seq);
        now = a.time;
      }
    }
    while (!heap->empty()) {
      ASSERT_FALSE(cal->empty());
      const auto a = heap->pop();
      const auto b = cal->pop();
      EXPECT_DOUBLE_EQ(a.time, b.time);
      EXPECT_EQ(a.seq, b.seq);
    }
    EXPECT_TRUE(cal->empty());
  }
}

TEST(EventQueueCalendar, ResizesWithPopulation) {
  CalendarEventQueue q;
  const auto initial_days = q.num_days();
  for (std::uint64_t s = 0; s < 1000; ++s) {
    q.push(item(static_cast<double>(s) * 0.37, s));
  }
  EXPECT_GT(q.num_days(), initial_days);
  while (!q.empty()) q.pop();
  EXPECT_LE(q.num_days(), 16u);  // shrank back down
}

TEST(EventQueueCalendar, RejectsNegativeTimes) {
  CalendarEventQueue q;
  EXPECT_THROW(q.push(item(-1.0, 0)), std::invalid_argument);
}

TEST(SimulatorWithCalendarQueue, MatchesHeapExecution) {
  // The same scripted workload on both kernels produces the same trace.
  const auto run = [](EventQueueKind kind) {
    Simulator sim(kind);
    std::vector<std::pair<double, int>> fired;
    Rng rng(77);
    for (int i = 0; i < 500; ++i) {
      const double t = rng.uniform01() * 1000.0;
      sim.schedule_at(t, [&fired, t, i] { fired.emplace_back(t, i); });
    }
    sim.run();
    return fired;
  };
  const auto heap = run(EventQueueKind::kBinaryHeap);
  const auto cal = run(EventQueueKind::kCalendar);
  ASSERT_EQ(heap.size(), cal.size());
  for (std::size_t i = 0; i < heap.size(); ++i) {
    EXPECT_EQ(heap[i], cal[i]);
  }
}

}  // namespace
}  // namespace pds
