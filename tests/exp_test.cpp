// Experiment engine (src/exp): work-stealing pool semantics — coverage,
// worker ids, exception propagation, nesting, oversubscription — and the
// determinism contract: a sweep's assembled output is byte-identical for
// any worker count.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <numeric>
#include <sstream>
#include <stdexcept>
#include <thread>
#include <vector>

#include "core/study_a.hpp"
#include "exp/sweep.hpp"
#include "exp/thread_pool.hpp"
#include "util/table.hpp"

namespace pds {
namespace {

TEST(SweepGridTest, FlatAndCoordsRoundTrip) {
  const SweepGrid grid({3, 4, 2});
  EXPECT_EQ(grid.size(), 24u);
  EXPECT_EQ(grid.rank(), 3u);
  for (std::size_t i = 0; i < grid.size(); ++i) {
    const auto at = grid.coords(i);
    ASSERT_EQ(at.size(), 3u);
    EXPECT_LT(at[0], 3u);
    EXPECT_LT(at[1], 4u);
    EXPECT_LT(at[2], 2u);
    EXPECT_EQ(grid.flat(at), i);
  }
  // Row-major: the last axis is the fastest.
  EXPECT_EQ(grid.flat({0, 0, 1}), 1u);
  EXPECT_EQ(grid.flat({0, 1, 0}), 2u);
  EXPECT_EQ(grid.flat({1, 0, 0}), 8u);
}

TEST(SweepGridTest, SingleAxis) {
  const SweepGrid grid({5});
  EXPECT_EQ(grid.size(), 5u);
  EXPECT_EQ(grid.coords(3), std::vector<std::size_t>{3});
}

TEST(ThreadPoolTest, CoversEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  for (const std::size_t count : {0ul, 1ul, 3ul, 4ul, 64ul, 1000ul}) {
    std::vector<std::atomic<std::uint32_t>> hits(count);
    pool.parallel_for(count, [&](std::uint32_t, std::size_t i) {
      hits[i].fetch_add(1, std::memory_order_relaxed);
    });
    for (std::size_t i = 0; i < count; ++i) {
      EXPECT_EQ(hits[i].load(), 1u) << "index " << i;
    }
  }
}

TEST(ThreadPoolTest, WorkerIdsStayInRange) {
  ThreadPool pool(3);
  std::vector<std::atomic<std::uint32_t>> by_worker(3);
  pool.parallel_for(200, [&](std::uint32_t worker, std::size_t) {
    ASSERT_LT(worker, 3u);
    by_worker[worker].fetch_add(1, std::memory_order_relaxed);
  });
  std::uint32_t total = 0;
  for (auto& w : by_worker) total += w.load();
  EXPECT_EQ(total, 200u);
}

TEST(ThreadPoolTest, SingleWorkerRunsInlineOnCaller) {
  ThreadPool pool(1);
  const auto caller = std::this_thread::get_id();
  std::vector<std::size_t> order;
  pool.parallel_for(10, [&](std::uint32_t worker, std::size_t i) {
    EXPECT_EQ(worker, 0u);
    EXPECT_EQ(std::this_thread::get_id(), caller);
    order.push_back(i);  // inline execution: no synchronization needed
  });
  std::vector<std::size_t> expect(10);
  std::iota(expect.begin(), expect.end(), 0u);
  EXPECT_EQ(order, expect);  // and in serial order
}

TEST(ThreadPoolTest, ExceptionPropagatesAndPoolStaysUsable) {
  ThreadPool pool(4);
  EXPECT_THROW(
      pool.parallel_for(100,
                        [&](std::uint32_t, std::size_t i) {
                          if (i == 37) throw std::runtime_error("cell 37");
                        }),
      std::runtime_error);
  // The pool must survive a failed job and run the next one normally.
  std::atomic<std::uint32_t> done{0};
  pool.parallel_for(50, [&](std::uint32_t, std::size_t) {
    done.fetch_add(1, std::memory_order_relaxed);
  });
  EXPECT_EQ(done.load(), 50u);
}

TEST(ThreadPoolTest, NestedParallelForRunsInline) {
  ThreadPool pool(4);
  std::vector<std::atomic<std::uint32_t>> hits(6 * 10);
  pool.parallel_for(6, [&](std::uint32_t outer_worker, std::size_t i) {
    EXPECT_TRUE(ThreadPool::in_parallel_region());
    // The nested loop must run inline on this participant, with the same
    // worker id, not deadlock on the already-busy pool.
    pool.parallel_for(10, [&](std::uint32_t inner_worker, std::size_t j) {
      EXPECT_EQ(inner_worker, outer_worker);
      hits[i * 10 + j].fetch_add(1, std::memory_order_relaxed);
    });
  });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1u);
}

TEST(ThreadPoolTest, OversubscriptionStress) {
  // Far more workers than cores: the claim/steal protocol must not lose or
  // duplicate indices under heavy contention.
  ThreadPool pool(16);
  for (int round = 0; round < 5; ++round) {
    std::vector<std::atomic<std::uint32_t>> hits(4096);
    std::atomic<std::uint64_t> sum{0};
    pool.parallel_for(4096, [&](std::uint32_t, std::size_t i) {
      hits[i].fetch_add(1, std::memory_order_relaxed);
      sum.fetch_add(i, std::memory_order_relaxed);
    });
    for (std::size_t i = 0; i < hits.size(); ++i) {
      ASSERT_EQ(hits[i].load(), 1u) << "round " << round << " index " << i;
    }
    EXPECT_EQ(sum.load(), 4095ull * 4096ull / 2ull);
  }
}

TEST(ThreadPoolTest, ResolveWorkersPrefersExplicitRequest) {
  EXPECT_EQ(ThreadPool::resolve_workers(3), 3u);
  EXPECT_GE(ThreadPool::resolve_workers(0), 1u);
}

TEST(ThreadPoolTest, PlanWorkersClampsLayeredParallelismToTheMachine) {
  const unsigned hw_raw = std::thread::hardware_concurrency();
  const std::uint32_t hw = hw_raw > 0 ? hw_raw : 1;
  // Serves the wider of the two layers, never more than the hardware.
  EXPECT_EQ(ThreadPool::plan_workers(1, 1), 1u);
  EXPECT_EQ(ThreadPool::plan_workers(1, hw), hw);
  EXPECT_EQ(ThreadPool::plan_workers(hw, 1), hw);
  EXPECT_EQ(ThreadPool::plan_workers(hw, hw), hw);
  // An oversized --jobs x --shards request still lands on the clamp.
  EXPECT_EQ(ThreadPool::plan_workers(4 * hw, 4 * hw), hw);
  // shards == 0 behaves like a serial shard layer.
  EXPECT_EQ(ThreadPool::plan_workers(1, 0), 1u);
  EXPECT_LE(ThreadPool::plan_workers(0, 0), hw);  // auto stays within bounds
}

TEST(FreeParallelForTest, PlainIndexOverload) {
  std::vector<std::atomic<std::uint32_t>> hits(100);
  parallel_for(100, [&](std::size_t i) {
    hits[i].fetch_add(1, std::memory_order_relaxed);
  });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1u);
}

TEST(RunSweepTest, ResultsLandInGridOrder) {
  const auto out = run_sweep(20, [](std::size_t i) { return 3 * i + 1; });
  ASSERT_EQ(out.size(), 20u);
  for (std::size_t i = 0; i < out.size(); ++i) EXPECT_EQ(out[i], 3 * i + 1);
}

TEST(RunSweepTest, GridVariantPassesCoords) {
  const SweepGrid grid({4, 5});
  const auto out =
      run_sweep(grid, [&](const std::vector<std::size_t>& at,
                          std::size_t flat) {
        EXPECT_EQ(grid.flat(at), flat);
        return at[0] * 100 + at[1];
      });
  ASSERT_EQ(out.size(), 20u);
  EXPECT_EQ(out[grid.flat({3, 2})], 302u);
}

// --- determinism contract -------------------------------------------------

// A reduced Figure-1-style panel rendered to a string: real simulations,
// table assembly after the barrier. Byte-compared across worker counts.
std::string render_small_panel() {
  const std::vector<double> rhos{0.80, 0.95};
  const std::vector<SchedulerKind> kinds{SchedulerKind::kWtp,
                                         SchedulerKind::kBpr};
  const SweepRunner runner({rhos.size(), kinds.size(), std::size_t{2}});
  const auto cells =
      runner.run([&](const std::vector<std::size_t>& at, std::size_t) {
        StudyAConfig config;
        config.utilization = rhos[at[0]];
        config.sim_time = 2.0e4;
        config.scheduler = kinds[at[1]];
        config.seed = 1 + at[2];
        return run_study_a(config).ratios;
      });
  std::ostringstream os;
  TablePrinter table({"rho", "WTP 1/2", "WTP 2/3", "WTP 3/4", "BPR 1/2",
                      "BPR 2/3", "BPR 3/4"});
  for (std::size_t r = 0; r < rhos.size(); ++r) {
    std::vector<std::string> row{TablePrinter::num(rhos[r])};
    for (std::size_t k = 0; k < kinds.size(); ++k) {
      std::vector<double> acc(3, 0.0);
      for (std::size_t s = 0; s < 2; ++s) {
        const auto& ratios = cells[runner.grid().flat({r, k, s})];
        for (std::size_t i = 0; i < acc.size(); ++i) acc[i] += ratios[i];
      }
      for (const double a : acc) row.push_back(TablePrinter::num(a / 2.0));
    }
    table.add_row(std::move(row));
  }
  table.print(os);
  return os.str();
}

TEST(DeterminismTest, ParallelSweepOutputByteIdenticalToSingleWorker) {
  ThreadPool::set_global_workers(1);
  const std::string serial = render_small_panel();
  ThreadPool::set_global_workers(4);
  const std::string parallel = render_small_panel();
  ThreadPool::set_global_workers(0);  // restore auto for later tests
  EXPECT_EQ(serial, parallel);
}

TEST(DeterminismTest, ReplicationsMatchSerialLoop) {
  StudyAConfig config;
  config.sim_time = 2.0e4;
  config.seed = 11;
  const auto parallel = run_study_a_replications(config, 4);
  ASSERT_EQ(parallel.size(), 4u);
  for (std::uint32_t k = 0; k < 4; ++k) {
    StudyAConfig serial = config;
    serial.seed = config.seed + k;
    const auto expect = run_study_a(serial);
    EXPECT_EQ(parallel[k].ratios, expect.ratios) << "seed offset " << k;
    EXPECT_EQ(parallel[k].mean_delays, expect.mean_delays);
    EXPECT_EQ(parallel[k].total_departures, expect.total_departures);
  }
}

}  // namespace
}  // namespace pds
