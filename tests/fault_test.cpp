// Fault injection: plan parsing, link fault semantics, loss bursts, and the
// determinism-under-faults contract.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "dropper/lossy_link.hpp"
#include "fault/fault_injector.hpp"
#include "fault/fault_plan.hpp"
#include "net/chain.hpp"
#include "sched/fcfs.hpp"
#include "sched/link.hpp"

namespace pds {
namespace {

Packet make_packet(std::uint64_t id, ClassId cls, std::uint32_t bytes) {
  Packet p;
  p.id = id;
  p.cls = cls;
  p.size_bytes = bytes;
  return p;
}

std::string parse_error(const std::string& text) {
  try {
    parse_fault_plan(text);
  } catch (const std::invalid_argument& e) {
    return e.what();
  }
  return {};
}

// ----------------------------------------------------------------- parsing

TEST(FaultPlan, ParsesTheReferencePlan) {
  const auto plan = parse_fault_plan(
      "# a flap plus a brown-out\n"
      "seed 7\n"
      "down backbone at=1e4 for=2e3 mode=hold\n"
      "degrade * at=2e4 for=5e3 factor=0.5   # trailing comment\n"
      "stall backbone at=3e4 for=100\n"
      "loss edge at=4e4 for=1e3 rate=0.25\n");
  EXPECT_EQ(plan.seed, 7u);
  ASSERT_EQ(plan.episodes.size(), 4u);
  EXPECT_EQ(plan.episodes[0].kind, FaultKind::kDown);
  EXPECT_EQ(plan.episodes[0].mode, OutageMode::kHoldArrivals);
  EXPECT_DOUBLE_EQ(plan.episodes[0].end(), 1.2e4);
  EXPECT_EQ(plan.episodes[1].target, "*");
  EXPECT_DOUBLE_EQ(plan.episodes[1].factor, 0.5);
  EXPECT_EQ(plan.episodes[2].kind, FaultKind::kStall);
  EXPECT_DOUBLE_EQ(plan.episodes[3].rate, 0.25);
}

TEST(FaultPlan, EmptyPlanIsLegal) {
  EXPECT_TRUE(parse_fault_plan("").empty());
  EXPECT_TRUE(parse_fault_plan("# comments only\n\n").empty());
  EXPECT_EQ(parse_fault_plan("").seed, 1u);
}

TEST(FaultPlan, DownModeDefaultsToDrop) {
  const auto plan = parse_fault_plan("down l at=10 for=5\n");
  EXPECT_EQ(plan.episodes[0].mode, OutageMode::kDropArrivals);
}

TEST(FaultPlan, ErrorsCarryTheLineNumber) {
  EXPECT_NE(parse_error("seed 1\nfrobnicate l at=1 for=1\n")
                .find("fault plan line 2: unknown directive frobnicate"),
            std::string::npos);
  EXPECT_NE(parse_error("down l at=1 for=1\n\ndown at=2 for=1\n")
                .find("line 3: down needs a target name"),
            std::string::npos);
  EXPECT_NE(parse_error("degrade l at=1 for=1\n")
                .find("line 1: missing required option factor=..."),
            std::string::npos);
}

TEST(FaultPlan, RejectsMalformedDirectives) {
  EXPECT_NE(parse_error("down l at=soon for=1\n").find("malformed number"),
            std::string::npos);
  EXPECT_NE(parse_error("down l at=1 for=1 bogus\n")
                .find("expected key=value"),
            std::string::npos);
  EXPECT_NE(parse_error("down l at=1 for=1 mode=drop color=red\n")
                .find("unknown option color"),
            std::string::npos);
  EXPECT_NE(parse_error("down l at=1 for=1 mode=maybe\n")
                .find("mode must be drop or hold"),
            std::string::npos);
  EXPECT_NE(parse_error("seed 1\nseed 2\n").find("duplicate seed"),
            std::string::npos);
  EXPECT_NE(parse_error("down l at=-1 for=1\n").find("at must be"),
            std::string::npos);
  EXPECT_NE(parse_error("down l at=1 for=0\n").find("for must be"),
            std::string::npos);
  EXPECT_NE(parse_error("degrade l at=1 for=1 factor=1\n")
                .find("factor must be in (0, 1)"),
            std::string::npos);
  EXPECT_NE(parse_error("loss l at=1 for=1 rate=1.5\n")
                .find("rate must be in (0, 1]"),
            std::string::npos);
}

// ----------------------------------------------------- link fault semantics

struct LinkFixture {
  Simulator sim;
  FcfsScheduler sched{1};
  std::vector<double> departures;  // completion times
  Link link{sim, sched, 100.0, [this](Packet&&, SimTime, SimTime now) {
              departures.push_back(now);
            }};
};

TEST(LinkFaults, DownDropModeDiscardsArrivalsAndRecovers) {
  LinkFixture f;
  std::uint64_t handler_drops = 0;
  f.link.set_fault_drop_handler(
      [&](const Packet&, SimTime) { ++handler_drops; });
  f.sim.schedule_at(10.0, [&] { f.link.take_down(OutageMode::kDropArrivals); });
  f.sim.schedule_at(15.0, [&] { f.link.arrive(make_packet(1, 0, 100)); });
  f.sim.schedule_at(20.0, [&] { f.link.bring_up(); });
  f.sim.schedule_at(25.0, [&] { f.link.arrive(make_packet(2, 0, 100)); });
  f.sim.run();
  // The outage arrival vanished; the post-recovery one transmitted normally.
  ASSERT_EQ(f.departures.size(), 1u);
  EXPECT_DOUBLE_EQ(f.departures[0], 26.0);
  EXPECT_EQ(f.link.fault_drops(), 1u);
  EXPECT_EQ(handler_drops, 1u);
}

TEST(LinkFaults, DownHoldModeReleasesTheBacklogOnRecovery) {
  LinkFixture f;
  f.sim.schedule_at(10.0, [&] { f.link.take_down(OutageMode::kHoldArrivals); });
  f.sim.schedule_at(12.0, [&] { f.link.arrive(make_packet(1, 0, 100)); });
  f.sim.schedule_at(13.0, [&] { f.link.arrive(make_packet(2, 0, 100)); });
  f.sim.schedule_at(20.0, [&] { f.link.bring_up(); });
  f.sim.run();
  // Both held packets drain back-to-back from the recovery instant.
  ASSERT_EQ(f.departures.size(), 2u);
  EXPECT_DOUBLE_EQ(f.departures[0], 21.0);
  EXPECT_DOUBLE_EQ(f.departures[1], 22.0);
  EXPECT_EQ(f.link.fault_drops(), 0u);
}

TEST(LinkFaults, FaultsGateFutureTransmissionsOnly) {
  // A packet already on the wire when the outage starts finishes on time.
  LinkFixture f;
  f.sim.schedule_at(0.0, [&] { f.link.arrive(make_packet(1, 0, 500)); });
  f.sim.schedule_at(1.0, [&] { f.link.take_down(OutageMode::kHoldArrivals); });
  f.sim.schedule_at(9.0, [&] { f.link.bring_up(); });
  f.sim.run();
  ASSERT_EQ(f.departures.size(), 1u);
  EXPECT_DOUBLE_EQ(f.departures[0], 5.0);  // 500 B / 100 B-per-tu
}

TEST(LinkFaults, DegradeScalesServiceOfLaterPackets) {
  LinkFixture f;
  f.sim.schedule_at(0.0, [&] { f.link.arrive(make_packet(1, 0, 100)); });
  f.sim.schedule_at(2.0, [&] { f.link.set_capacity_factor(0.5); });
  f.sim.schedule_at(3.0, [&] { f.link.arrive(make_packet(2, 0, 100)); });
  f.sim.schedule_at(10.0, [&] { f.link.set_capacity_factor(1.0); });
  f.sim.schedule_at(11.0, [&] { f.link.arrive(make_packet(3, 0, 100)); });
  f.sim.run();
  ASSERT_EQ(f.departures.size(), 3u);
  EXPECT_DOUBLE_EQ(f.departures[0], 1.0);   // full rate
  EXPECT_DOUBLE_EQ(f.departures[1], 5.0);   // 3.0 + 100/(100*0.5)
  EXPECT_DOUBLE_EQ(f.departures[2], 12.0);  // restored
}

TEST(LinkFaults, StallPausesAndResumeRestartsService) {
  LinkFixture f;
  f.sim.schedule_at(5.0, [&] { f.link.stall(); });
  f.sim.schedule_at(6.0, [&] { f.link.arrive(make_packet(1, 0, 100)); });
  f.sim.schedule_at(14.0, [&] { f.link.resume(); });
  f.sim.run();
  ASSERT_EQ(f.departures.size(), 1u);
  EXPECT_DOUBLE_EQ(f.departures[0], 15.0);
  EXPECT_EQ(f.link.fault_drops(), 0u);  // stalls never drop
}

TEST(LinkFaults, StateTransitionsAreContractChecked) {
  LinkFixture f;
  EXPECT_THROW(f.link.bring_up(), std::invalid_argument);
  EXPECT_THROW(f.link.resume(), std::invalid_argument);
  f.link.take_down(OutageMode::kDropArrivals);
  EXPECT_THROW(f.link.take_down(OutageMode::kDropArrivals),
               std::invalid_argument);
  f.link.bring_up();
  EXPECT_THROW(f.link.set_capacity_factor(0.0), std::invalid_argument);
  EXPECT_THROW(f.link.set_capacity_factor(1.5), std::invalid_argument);
}

// ------------------------------------------------------------- loss bursts

struct LossyFixture {
  Simulator sim;
  FcfsScheduler sched{1};
  std::uint64_t departed = 0;
  std::uint64_t dropped = 0;
  LossyLink lossy{sim,
                  sched,
                  100.0,
                  1000,
                  DropPolicy::kDropIncoming,
                  nullptr,
                  [this](Packet&&, SimTime, SimTime) { ++departed; },
                  [this](const Packet&, SimTime) { ++dropped; }};

  // Feeds `count` packets, one per 2 time units from t = 1.
  void feed(std::uint64_t count) {
    for (std::uint64_t i = 0; i < count; ++i) {
      sim.schedule_at(1.0 + 2.0 * static_cast<double>(i), [this, i] {
        lossy.arrive(make_packet(i, 0, 100));
      });
    }
  }
};

TEST(LossBurst, DropsArrivalsAtTheGivenRateDeterministically) {
  LossyFixture a;
  a.feed(500);
  a.sim.schedule_at(0.0, [&] { a.lossy.set_burst_loss(0.5, Rng(42)); });
  a.sim.run();
  EXPECT_TRUE(a.lossy.burst_loss_active());
  EXPECT_GT(a.lossy.burst_drops(), 150u);  // ~250 expected
  EXPECT_LT(a.lossy.burst_drops(), 350u);
  EXPECT_EQ(a.lossy.burst_drops(), a.dropped);
  EXPECT_EQ(a.departed + a.dropped, 500u);
  // Burst drops are fault accounting, not drop-policy accounting.
  EXPECT_EQ(a.lossy.drops(0), 0u);

  // Same seed => identical drop pattern.
  LossyFixture b;
  b.feed(500);
  b.sim.schedule_at(0.0, [&] { b.lossy.set_burst_loss(0.5, Rng(42)); });
  b.sim.run();
  EXPECT_EQ(b.lossy.burst_drops(), a.lossy.burst_drops());
  EXPECT_EQ(b.departed, a.departed);
}

TEST(LossBurst, ClearStopsTheDrops) {
  LossyFixture f;
  f.feed(100);
  f.sim.schedule_at(0.0, [&] { f.lossy.set_burst_loss(1.0, Rng(1)); });
  f.sim.schedule_at(100.0, [&] { f.lossy.clear_burst_loss(); });
  f.sim.run();
  EXPECT_FALSE(f.lossy.burst_loss_active());
  // Arrivals at t=1,3,...,99 all dropped; the rest all delivered.
  EXPECT_EQ(f.lossy.burst_drops(), 50u);
  EXPECT_EQ(f.departed, 50u);
  EXPECT_THROW(f.lossy.set_burst_loss(0.0, Rng(1)), std::invalid_argument);
}

// ---------------------------------------------------------------- injector

TEST(FaultInjector, DrivesAScriptedFlapAgainstTheLink) {
  LinkFixture f;
  FaultInjector inj(f.sim, parse_fault_plan(
                               "down l at=10 for=10 mode=drop\n"
                               "degrade l at=30 for=10 factor=0.5\n"));
  inj.attach("l", f.link);
  inj.arm();
  EXPECT_EQ(inj.scheduled_episodes(), 2u);
  f.sim.schedule_at(15.0, [&] { f.link.arrive(make_packet(1, 0, 100)); });
  f.sim.schedule_at(35.0, [&] { f.link.arrive(make_packet(2, 0, 100)); });
  f.sim.run();
  EXPECT_EQ(f.link.fault_drops(), 1u);
  ASSERT_EQ(f.departures.size(), 1u);
  EXPECT_DOUBLE_EQ(f.departures[0], 37.0);  // degraded rate
  EXPECT_EQ(inj.episodes_begun(), 2u);
  EXPECT_EQ(inj.episodes_completed(), 2u);
  EXPECT_FALSE(inj.any_active());
  EXPECT_FALSE(f.link.down());
  EXPECT_DOUBLE_EQ(f.link.capacity_factor(), 1.0);
}

TEST(FaultInjector, StarExpandsOverEveryAttachedTarget) {
  Simulator sim;
  FcfsScheduler s1{1}, s2{1};
  Link l1{sim, s1, 100.0, [](Packet&&, SimTime, SimTime) {}};
  Link l2{sim, s2, 100.0, [](Packet&&, SimTime, SimTime) {}};
  FaultInjector inj(sim, parse_fault_plan("stall * at=5 for=2\n"));
  inj.attach("a", l1);
  inj.attach("b", l2);
  inj.arm();
  EXPECT_EQ(inj.scheduled_episodes(), 2u);
  sim.schedule_at(6.0, [&] {
    EXPECT_TRUE(l1.stalled());
    EXPECT_TRUE(l2.stalled());
  });
  sim.run();
  EXPECT_FALSE(l1.stalled());
  EXPECT_FALSE(l2.stalled());
}

TEST(FaultInjector, ValidatesTargetsAndOverlaps) {
  Simulator sim;
  FcfsScheduler sched{1};
  Link link{sim, sched, 100.0, [](Packet&&, SimTime, SimTime) {}};
  {
    FaultInjector inj(sim, parse_fault_plan("down nosuch at=1 for=1\n"));
    inj.attach("l", link);
    EXPECT_THROW(inj.arm(), std::invalid_argument);
  }
  {
    // Loss episodes need a LossyLink, not a plain Link.
    FaultInjector inj(sim, parse_fault_plan("loss l at=1 for=1 rate=0.5\n"));
    inj.attach("l", link);
    EXPECT_THROW(inj.arm(), std::invalid_argument);
  }
  {
    // Same-kind overlap on one target is ambiguous and rejected.
    FaultInjector inj(sim, parse_fault_plan("stall l at=1 for=10\n"
                                            "stall l at=5 for=10\n"));
    inj.attach("l", link);
    EXPECT_THROW(inj.arm(), std::invalid_argument);
  }
  // Different kinds may overlap; nothing is attached twice. This injector
  // arms, so it must outlive the run that fires its episodes.
  FaultInjector inj(sim,
                    parse_fault_plan("stall l at=1 for=10\n"
                                     "degrade l at=5 for=10 factor=0.5\n"));
  inj.attach("l", link);
  EXPECT_THROW(inj.attach("l", link), std::invalid_argument);
  EXPECT_NO_THROW(inj.arm());
  EXPECT_THROW(inj.arm(), std::invalid_argument);  // armed twice
  sim.run();
  EXPECT_EQ(inj.episodes_completed(), 2u);
}

TEST(FaultInjector, OverlapErrorNamesBothPlanLines) {
  // With wildcard expansion the conflicting pair may come from distant
  // lines, so the message pins both (and the kind and target).
  Simulator sim;
  FcfsScheduler sched{1};
  Link link{sim, sched, 100.0, [](Packet&&, SimTime, SimTime) {}};
  FaultInjector inj(sim, parse_fault_plan("stall l at=1 for=10\n"
                                          "# a comment shifts the lines\n"
                                          "stall * at=5 for=10\n"));
  inj.attach("l", link);
  try {
    inj.arm();
    FAIL() << "overlap not rejected";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what())
                  .find("overlapping stall episodes on l (lines 1 and 3)"),
              std::string::npos)
        << e.what();
  }
}

TEST(FaultInjector, PrefixPatternsExpandInAttachOrder) {
  Simulator sim;
  FcfsScheduler s1{1}, s2{1}, s3{1};
  Link l1{sim, s1, 100.0, [](Packet&&, SimTime, SimTime) {}};
  Link l2{sim, s2, 100.0, [](Packet&&, SimTime, SimTime) {}};
  Link l3{sim, s3, 100.0, [](Packet&&, SimTime, SimTime) {}};
  FaultInjector inj(sim, parse_fault_plan("stall pod0* at=5 for=2\n"));
  inj.attach("pod0>a", l1);
  inj.attach("pod1>b", l2);
  inj.attach("pod0>c", l3);
  inj.arm();
  EXPECT_EQ(inj.scheduled_episodes(), 2u);
  sim.schedule_at(6.0, [&] {
    EXPECT_TRUE(l1.stalled());
    EXPECT_FALSE(l2.stalled());
    EXPECT_TRUE(l3.stalled());
  });
  sim.run();
  EXPECT_EQ(inj.episodes_completed(), 2u);
}

TEST(FaultInjector, UnmatchedPatternsFailWithTheirPlanLine) {
  Simulator sim;
  FcfsScheduler sched{1};
  Link link{sim, sched, 100.0, [](Packet&&, SimTime, SimTime) {}};
  FaultInjector inj(sim, parse_fault_plan("seed 1\n"
                                          "stall rack9* at=5 for=2\n"));
  inj.attach("pod0", link);
  try {
    inj.arm();
    FAIL() << "unmatched pattern not rejected";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what())
                  .find("line 2: pattern rack9* matches no attached target"),
              std::string::npos)
        << e.what();
  }
}

TEST(FaultInjector, AttachChainNamesEveryHop) {
  Simulator sim;
  SchedulerConfig sc;
  sc.sdp = {1.0, 2.0};
  ChainNetwork chain(sim, 3, SchedulerKind::kWtp, sc, 100.0,
                     [](const Packet&, SimTime) {});
  FaultInjector inj(sim, parse_fault_plan("down hop1 at=5 for=2\n"));
  attach_chain(inj, chain);
  inj.arm();
  sim.schedule_at(6.0, [&] {
    EXPECT_FALSE(chain.link_mut(0).down());
    EXPECT_TRUE(chain.link_mut(1).down());
    EXPECT_FALSE(chain.link_mut(2).down());
  });
  sim.run();
  EXPECT_FALSE(chain.link_mut(1).down());
}

// ------------------------------------------------------------- determinism

TEST(FaultInjector, FaultedRunsReplayByteIdentically) {
  // Same plan + same workload twice: identical departure schedules, even
  // through a drop outage and a loss burst would-be-randomness.
  const char* plan =
      "seed 9\n"
      "down l at=50 for=20 mode=drop\n"
      "degrade l at=100 for=30 factor=0.5\n";
  auto run_once = [&] {
    LinkFixture f;
    FaultInjector inj(f.sim, parse_fault_plan(plan));
    inj.attach("l", f.link);
    inj.arm();
    for (std::uint64_t i = 0; i < 100; ++i) {
      f.sim.schedule_at(1.0 + 1.7 * static_cast<double>(i), [&f, i] {
        f.link.arrive(make_packet(i, 0, 100));
      });
    }
    f.sim.run();
    auto out = f.departures;
    out.push_back(static_cast<double>(f.link.fault_drops()));
    return out;
  };
  EXPECT_EQ(run_once(), run_once());
}

}  // namespace
}  // namespace pds
