#include <gtest/gtest.h>

#include "core/feasibility.hpp"
#include "core/model.hpp"
#include "core/study_a.hpp"
#include "core/trace.hpp"

namespace pds {
namespace {

// ------------------------------------------------------------ FCFS replay

TEST(FcfsReplay, LindleyRecursionHandComputed) {
  // Capacity 10 B/tu. Arrivals: t=0 (100 B, tx 10), t=5 (100 B), t=30.
  // Waits: 0; (10-5)=5; 0.
  const std::vector<ArrivalRecord> trace{
      {0.0, 0, 100}, {5.0, 0, 100}, {30.0, 0, 100}};
  const double avg = fcfs_average_delay(trace, {true}, 10.0);
  EXPECT_NEAR(avg, 5.0 / 3.0, 1e-12);
}

TEST(FcfsReplay, SubsetSelectionDropsOtherClasses) {
  // Class 1's packet at t=5 queues behind class 0's only if class 0 is
  // included in the replay.
  const std::vector<ArrivalRecord> trace{
      {0.0, 0, 100}, {5.0, 1, 100}};
  const double both =
      fcfs_average_delay(trace, {true, true}, 10.0);
  const double only1 =
      fcfs_average_delay(trace, {false, true}, 10.0);
  EXPECT_NEAR(both, 2.5, 1e-12);   // waits 0 and 5
  EXPECT_NEAR(only1, 0.0, 1e-12);  // alone, no queueing
}

TEST(FcfsReplay, WarmupExcludesEarlyArrivalsFromTheAverage) {
  const std::vector<ArrivalRecord> trace{
      {0.0, 0, 100}, {5.0, 0, 100}, {12.0, 0, 100}};
  // Waits: 0, 5, 8. Warmup 4.0 keeps the 2nd and 3rd.
  const double avg = fcfs_average_delay(trace, {true}, 10.0, 4.0);
  EXPECT_NEAR(avg, (5.0 + 8.0) / 2.0, 1e-12);
}

TEST(FcfsReplay, RejectsUnorderedTrace) {
  const std::vector<ArrivalRecord> trace{{5.0, 0, 100}, {0.0, 0, 100}};
  EXPECT_THROW(fcfs_average_delay(trace, {true}, 10.0),
               std::invalid_argument);
}

TEST(FcfsReplay, ClassCountsRespectWarmup) {
  const std::vector<ArrivalRecord> trace{
      {0.0, 0, 10}, {1.0, 1, 10}, {2.0, 1, 10}};
  const auto all = class_counts(trace, 2);
  EXPECT_EQ(all[0], 1u);
  EXPECT_EQ(all[1], 2u);
  const auto late = class_counts(trace, 2, 1.5);
  EXPECT_EQ(late[0], 0u);
  EXPECT_EQ(late[1], 1u);
}

// ------------------------------------------------------------- feasibility

std::vector<ArrivalRecord> heavy_trace() {
  StudyAConfig config;
  config.scheduler = SchedulerKind::kFcfs;
  config.utilization = 0.95;
  config.sim_time = 2.0e5;
  config.record_trace = true;
  config.seed = 101;
  return run_study_a(config).trace;
}

TEST(Feasibility, EqualDdpsAreAlwaysFeasible) {
  // Equal targets reproduce the FCFS delays themselves; the subset
  // conditions reduce to d(lambda) >= d(subset), which holds because a
  // subset of the traffic can only see *less* queueing.
  const auto trace = heavy_trace();
  const auto report =
      check_feasibility(trace, {1.0, 1.0, 1.0, 1.0}, kStudyACapacity,
                        /*warmup_end=*/2.0e4);
  EXPECT_TRUE(report.feasible) << report.summary();
  EXPECT_EQ(report.checks.size(), 14u);  // 2^4 - 2
}

TEST(Feasibility, PaperDdpsAreFeasibleAtHeavyLoad) {
  // The paper verified (Sec. 3/5) that the Figure 1-2 experiments use
  // feasible DDPs; this is the same check on our traffic.
  const auto trace = heavy_trace();
  const auto report = check_feasibility(
      trace, ddp_from_sdp({1.0, 2.0, 4.0, 8.0}), kStudyACapacity, 2.0e4);
  EXPECT_TRUE(report.feasible) << report.summary();
}

TEST(Feasibility, ExtremeSpacingIsInfeasible) {
  // delta ratios of 10^4 would require the top class to beat its own
  // solo-FCFS delay: some subset condition must fail.
  const auto trace = heavy_trace();
  const auto report = check_feasibility(
      trace, {1.0, 1e-2, 1e-3, 1e-4}, kStudyACapacity, 2.0e4);
  EXPECT_FALSE(report.feasible) << report.summary();
  EXPECT_GT(report.violated, 0u);
}

TEST(Feasibility, ReportExposesTargetsAndChecks) {
  const auto trace = heavy_trace();
  const auto report = check_feasibility(
      trace, ddp_from_sdp({1.0, 2.0, 4.0, 8.0}), kStudyACapacity, 2.0e4);
  ASSERT_EQ(report.target_delays.size(), 4u);
  // Targets honour the DDP ratios exactly.
  EXPECT_NEAR(report.target_delays[0] / report.target_delays[1], 2.0, 1e-9);
  EXPECT_GT(report.aggregate_fcfs_delay, 0.0);
  for (const auto& check : report.checks) {
    EXPECT_FALSE(check.classes.empty());
    EXPECT_LT(check.classes.size(), 4u);  // proper subsets only
  }
  EXPECT_NE(report.summary().find("FEASIBLE"), std::string::npos);
}

TEST(Feasibility, RejectsDegenerateInputs) {
  const std::vector<ArrivalRecord> empty;
  EXPECT_THROW(check_feasibility(empty, {1.0, 0.5}, 10.0),
               std::invalid_argument);
  const std::vector<ArrivalRecord> trace{{0.0, 0, 10}};
  EXPECT_THROW(check_feasibility(trace, {1.0}, 10.0),
               std::invalid_argument);
}

}  // namespace
}  // namespace pds
