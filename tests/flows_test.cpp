#include <gtest/gtest.h>

#include "net/flows.hpp"
#include "net/scenario.hpp"

namespace pds {
namespace {

SchedulerConfig fcfs_config() {
  SchedulerConfig c;
  c.sdp = {1.0};
  c.link_capacity = 100.0;
  return c;
}

// A two-node graph with one link per direction plus a workload wired the
// way the scenario runner wires it (exit handlers feed on_route_exit).
struct Harness {
  Simulator sim;
  Network net{sim};
  PacketIdAllocator ids;
  FlowIdAllocator flow_ids;
  RouteId forward = 0;
  RouteId reverse = 0;
  RpcWorkload* workload = nullptr;

  Harness() {
    const auto a = net.add_node("a");
    const auto b = net.add_node("b");
    const auto ab = net.add_edge(a, b, SchedulerKind::kFcfs, fcfs_config(),
                                 100.0);
    const auto ba = net.add_edge(b, a, SchedulerKind::kFcfs, fcfs_config(),
                                 100.0);
    const auto handler = [this](const Packet& p, SimTime now) {
      if (workload != nullptr) workload->on_route_exit(p, now);
    };
    forward = net.add_route({ab}, handler);
    reverse = net.add_route({ba}, handler);
  }
};

TEST(RpcWorkload, FctIsExactOnAnIdleLine) {
  // One saturating user, 100 B packets on 100 B/tu links: 1 tu per
  // direction, so every FCT is exactly 2 tu and RPCs complete
  // back-to-back.
  Harness h;
  RpcConfig config;
  config.users = 1;
  config.size_bytes = 100;
  config.think_mean = 0.0;
  config.deadline = 2.0;
  RpcWorkload wl(h.sim, h.net, h.ids, h.flow_ids, h.forward, h.reverse,
                 config, Rng(1));
  h.workload = &wl;
  wl.start(0.0);
  h.sim.run_until(100.0);
  EXPECT_EQ(wl.stats().completed, 50u);
  EXPECT_EQ(wl.stats().failed, 0u);
  EXPECT_DOUBLE_EQ(wl.stats().fct.mean(), 2.0);
  EXPECT_DOUBLE_EQ(wl.stats().slo_attainment(), 1.0);
}

TEST(RpcWorkload, MultiPacketRequestAndResponseStretchTheFct) {
  // request=2, response=3: the server replies when the SECOND request
  // packet exits (t=2); responses exit at 3,4,5 -> FCT 5.
  Harness h;
  RpcConfig config;
  config.users = 1;
  config.size_bytes = 100;
  config.request_packets = 2;
  config.response_packets = 3;
  RpcWorkload wl(h.sim, h.net, h.ids, h.flow_ids, h.forward, h.reverse,
                 config, Rng(1));
  h.workload = &wl;
  wl.start(0.0);
  h.sim.run_until(5.5);
  EXPECT_EQ(wl.stats().completed, 1u);
  EXPECT_DOUBLE_EQ(wl.stats().fct.mean(), 5.0);
}

TEST(RpcWorkload, DeadlineMissesCountAgainstTheSlo) {
  Harness h;
  RpcConfig config;
  config.users = 1;
  config.size_bytes = 100;
  config.deadline = 1.9;  // every FCT is 2.0 -> every RPC misses
  RpcWorkload wl(h.sim, h.net, h.ids, h.flow_ids, h.forward, h.reverse,
                 config, Rng(1));
  h.workload = &wl;
  wl.start(0.0);
  h.sim.run_until(20.0);
  EXPECT_GT(wl.stats().completed, 0u);
  EXPECT_EQ(wl.stats().slo_met, 0u);
  EXPECT_DOUBLE_EQ(wl.stats().slo_attainment(), 0.0);
}

TEST(RpcWorkload, WarmupExcludesEarlyRpcsFromScoring) {
  Harness h;
  RpcConfig config;
  config.users = 1;
  config.size_bytes = 100;
  RpcWorkload wl(h.sim, h.net, h.ids, h.flow_ids, h.forward, h.reverse,
                 config, Rng(1));
  h.workload = &wl;
  wl.set_warmup(50.0);
  wl.start(0.0);
  h.sim.run_until(100.0);
  // Issues at t = 0, 2, ..., 100 (the t=100 one is still in flight when
  // the run stops); only the 25 issued at t in [50, 98] score.
  EXPECT_EQ(wl.stats().issued, 51u);
  EXPECT_EQ(wl.stats().completed, 25u);
}

TEST(RpcWorkload, ValidatesItsConfig) {
  Harness h;
  RpcConfig config;
  config.users = 0;
  EXPECT_THROW(RpcWorkload(h.sim, h.net, h.ids, h.flow_ids, h.forward,
                           h.reverse, config, Rng(1)),
               std::invalid_argument);
  config.users = 1;
  config.max_retries = 2;  // retries without an rto
  EXPECT_THROW(RpcWorkload(h.sim, h.net, h.ids, h.flow_ids, h.forward,
                           h.reverse, config, Rng(1)),
               std::invalid_argument);
}

// ------------------------------------------------- scenario-level behavior

// Line a<->b carrying one closed-loop workload; knobs appended per test.
std::string flows_scenario(const std::string& flows_line) {
  return "topology line n=2 capacity=100 sched=fcfs sdp=1\n"
         "route r from=n0 to=n1\n" +
         flows_line + "run until=20000 warmup=1000 seed=3\n";
}

TEST(ScenarioFlowsRun, ReportsFlowStatsAndSloAttainment) {
  const auto report = run_scenario(flows_scenario(
      "flows r class=0 users=4 size=441 think=50 deadline=40\n"));
  ASSERT_EQ(report.flow_stats.size(), 1u);
  const auto& fs = report.flow_stats[0];
  EXPECT_EQ(fs.route, "r");
  EXPECT_EQ(fs.users, 4u);
  EXPECT_GT(fs.completed, 100u);
  EXPECT_EQ(fs.failed, 0u);
  EXPECT_GT(fs.fct_p50, 0.0);
  EXPECT_LE(fs.fct_p50, fs.fct_p95);
  EXPECT_LE(fs.fct_p95, fs.fct_p99);
  EXPECT_GT(fs.slo_attainment, 0.9);
}

TEST(ScenarioFlowsRun, DeterministicPerSeedAndSensitiveToIt) {
  const auto text = flows_scenario(
      "flows r class=0 users=4 size=441 think=50 deadline=40\n");
  const auto a = run_scenario(text);
  const auto b = run_scenario(text);
  EXPECT_EQ(a.flow_stats[0].completed, b.flow_stats[0].completed);
  EXPECT_DOUBLE_EQ(a.flow_stats[0].fct_mean, b.flow_stats[0].fct_mean);
  EXPECT_EQ(a.total_exits, b.total_exits);
  const auto c = run_scenario(text, 77u);
  EXPECT_NE(a.total_exits, c.total_exits);
}

TEST(ScenarioFlowsRun, UsersOverrideScalesTheWorkload) {
  const auto text = flows_scenario(
      "flows r class=0 users=2 size=441 think=50\n");
  ScenarioOptions more;
  more.users = 16;
  const auto small = run_scenario(text, ScenarioOptions{});
  const auto big = run_scenario(text, more);
  EXPECT_EQ(big.flow_stats[0].users, 16u);
  EXPECT_GT(big.flow_stats[0].completed, 2 * small.flow_stats[0].completed);
}

TEST(ScenarioFlowsRun, RetriesRecoverFromAnOutage) {
  // Without retries an outage strands closed-loop users (their requests
  // are dropped and nothing ever answers); with retries the loop recovers
  // and completes far more RPCs.
  const auto stuck_text = flows_scenario(
      "flows r class=0 users=4 size=441 think=50\n");
  const auto retry_text = flows_scenario(
      "flows r class=0 users=4 size=441 think=50 "
      "rto=100 retries=6 backoff=2 rto_cap=800\n");
  ScenarioOptions options;
  options.fault_plan = "down n0>n1 at=5000 for=1000 mode=drop\n";
  const auto stuck = run_scenario(stuck_text, options);
  const auto retried = run_scenario(retry_text, options);
  EXPECT_TRUE(stuck.faulted);
  EXPECT_GT(retried.flow_stats[0].retries, 0u);
  // All four stuck users are stranded by t=5000+eps; the retrying run
  // keeps completing for the remaining 15000 tu.
  EXPECT_GT(retried.flow_stats[0].completed,
            2 * stuck.flow_stats[0].completed);
}

TEST(ScenarioFlowsRun, ThrottleBudgetSuppressesRetryStorms) {
  // A long outage with fast retries: an unthrottled workload burns a
  // retry storm into the dead link; a throttled one stops retrying once
  // the token budget drains below half.
  const auto unthrottled_text = flows_scenario(
      "flows r class=0 users=8 size=441 think=20 "
      "rto=50 retries=8 backoff=1 rto_cap=50\n");
  const auto throttled_text = flows_scenario(
      "flows r class=0 users=8 size=441 think=20 "
      "rto=50 retries=8 backoff=1 rto_cap=50 "
      "throttle=10 throttle_ratio=0.5\n");
  ScenarioOptions options;
  options.fault_plan = "down n0>n1 at=2000 for=12000 mode=drop\n";
  const auto open = run_scenario(unthrottled_text, options);
  const auto gated = run_scenario(throttled_text, options);
  EXPECT_EQ(open.flow_stats[0].throttled, 0u);
  EXPECT_GT(gated.flow_stats[0].throttled, 0u);
  EXPECT_LT(gated.flow_stats[0].retries, open.flow_stats[0].retries / 2);
  // Both still fail RPCs during the outage (the loop stays alive).
  EXPECT_GT(gated.flow_stats[0].failed, 0u);
}

TEST(ScenarioFlowsRun, TwoWorkloadsShareARouteWithoutCrosstalk) {
  const auto report = run_scenario(flows_scenario(
      "flows r class=0 users=3 size=441 think=60\n"
      "flows r class=0 users=5 size=200 think=60\n"));
  ASSERT_EQ(report.flow_stats.size(), 2u);
  EXPECT_EQ(report.flow_stats[0].users, 3u);
  EXPECT_EQ(report.flow_stats[1].users, 5u);
  EXPECT_GT(report.flow_stats[0].completed, 0u);
  EXPECT_GT(report.flow_stats[1].completed, 0u);
  EXPECT_EQ(report.flow_stats[0].failed, 0u);
  EXPECT_EQ(report.flow_stats[1].failed, 0u);
}

TEST(ScenarioFlowsRun, ExplicitReverseRouteCarriesTheResponses) {
  const char* text =
      "link up capacity=100 sched=fcfs sdp=1\n"
      "link down capacity=100 sched=fcfs sdp=1\n"
      "route fwd up\n"
      "route rev down\n"
      "flows fwd class=0 users=2 size=441 think=50 reverse=rev\n"
      "run until=10000 warmup=500 seed=2\n";
  const auto report = run_scenario(text);
  ASSERT_EQ(report.flow_stats.size(), 1u);
  EXPECT_GT(report.flow_stats[0].completed, 50u);
  // Responses flowed over `down`.
  EXPECT_GT(report.link_stats[1].packets_sent, 50u);
}

}  // namespace
}  // namespace pds
