#include <gtest/gtest.h>

#include "stats/histogram.hpp"

namespace pds {
namespace {

TEST(LogHistogram, BoundsGrowGeometrically) {
  LogHistogram h(1.0, 2.0, 4);
  EXPECT_DOUBLE_EQ(h.bin_bound(0), 2.0);
  EXPECT_DOUBLE_EQ(h.bin_bound(1), 4.0);
  EXPECT_DOUBLE_EQ(h.bin_bound(3), 16.0);
}

TEST(LogHistogram, RoutesSamplesToBins) {
  LogHistogram h(1.0, 2.0, 4);  // bins [1,2) [2,4) [4,8) [8,16)
  h.add(0.5);   // underflow
  h.add(1.0);   // bin 0
  h.add(1.99);  // bin 0
  h.add(2.0);   // bin 1
  h.add(7.9);   // bin 2
  h.add(15.9);  // bin 3
  h.add(16.0);  // overflow
  h.add(100.0); // overflow
  EXPECT_EQ(h.count(), 8u);
  EXPECT_EQ(h.underflow(), 1u);
  EXPECT_EQ(h.bin_count(0), 2u);
  EXPECT_EQ(h.bin_count(1), 1u);
  EXPECT_EQ(h.bin_count(2), 1u);
  EXPECT_EQ(h.bin_count(3), 1u);
  EXPECT_EQ(h.overflow(), 2u);
}

TEST(LogHistogram, CcdfAtBinBoundsIsExact) {
  LogHistogram h(1.0, 2.0, 4);
  for (const double v : {0.5, 1.5, 3.0, 6.0, 12.0, 24.0}) h.add(v);
  // Above 2.0: 3.0, 6.0, 12.0, 24.0 -> 4/6.
  EXPECT_DOUBLE_EQ(h.ccdf(2.0), 4.0 / 6.0);
  // Above 16 (last bound): only overflow (24) -> 1/6.
  EXPECT_DOUBLE_EQ(h.ccdf(16.0), 1.0 / 6.0);
  // Below the first bound: everything counts.
  EXPECT_DOUBLE_EQ(h.ccdf(0.1), 1.0);
}

TEST(LogHistogram, RowsAreMonotoneNonIncreasing) {
  LogHistogram h(1.0, 2.0, 8);
  for (int i = 1; i <= 200; ++i) h.add(0.3 * i);
  const auto rows = h.rows();
  ASSERT_EQ(rows.size(), 8u);
  for (std::size_t i = 1; i < rows.size(); ++i) {
    EXPECT_GT(rows[i].bound, rows[i - 1].bound);
    EXPECT_LE(rows[i].ccdf, rows[i - 1].ccdf);
  }
  EXPECT_DOUBLE_EQ(rows.back().ccdf,
                   static_cast<double>(h.overflow()) /
                       static_cast<double>(h.count()));
}

TEST(LogHistogram, RejectsBadInput) {
  EXPECT_THROW(LogHistogram(0.0, 2.0, 4), std::invalid_argument);
  EXPECT_THROW(LogHistogram(1.0, 1.0, 4), std::invalid_argument);
  EXPECT_THROW(LogHistogram(1.0, 2.0, 0), std::invalid_argument);
  LogHistogram h(1.0, 2.0, 4);
  EXPECT_THROW(h.add(-1.0), std::invalid_argument);
  EXPECT_THROW(h.ccdf(1.0), std::invalid_argument);  // empty
  EXPECT_THROW(h.bin_bound(9), std::invalid_argument);
}

}  // namespace
}  // namespace pds
