#include <gtest/gtest.h>

#include "core/study_a.hpp"
#include "stats/jitter.hpp"

namespace pds {
namespace {

TEST(Jitter, ConstantDelaysHaveZeroJitter) {
  JitterEstimator j(1);
  for (int i = 0; i < 100; ++i) j.record(0, 25.0);
  EXPECT_DOUBLE_EQ(j.jitter(0), 0.0);
  EXPECT_EQ(j.samples(0), 100u);
}

TEST(Jitter, SingleSampleIsZero) {
  JitterEstimator j(1);
  j.record(0, 10.0);
  EXPECT_DOUBLE_EQ(j.jitter(0), 0.0);
}

TEST(Jitter, ConvergesToMeanAbsoluteDifference) {
  // Alternating 10/30: |D| = 20 every step; the 1/16-gain filter's fixed
  // point is 20.
  JitterEstimator j(1);
  for (int i = 0; i < 600; ++i) j.record(0, (i % 2) ? 30.0 : 10.0);
  EXPECT_NEAR(j.jitter(0), 20.0, 0.1);
}

TEST(Jitter, ClassesAreIndependent) {
  JitterEstimator j(2);
  for (int i = 0; i < 200; ++i) {
    j.record(0, 5.0);
    j.record(1, (i % 2) ? 40.0 : 0.0);
  }
  EXPECT_DOUBLE_EQ(j.jitter(0), 0.0);
  EXPECT_GT(j.jitter(1), 30.0);
}

TEST(Jitter, RejectsBadInput) {
  JitterEstimator j(1);
  EXPECT_THROW(j.record(3, 1.0), std::invalid_argument);
  EXPECT_THROW(j.record(0, -1.0), std::invalid_argument);
  EXPECT_THROW(j.jitter(9), std::invalid_argument);
  EXPECT_THROW(JitterEstimator(0), std::invalid_argument);
}

TEST(Jitter, StudyAReportsOrderedJitterUnderWtp) {
  // Delay *variation* benefits from differentiation too, though less
  // sharply than the mean: sparse high classes see consecutive packets far
  // apart in time, so their jitter does not shrink proportionally. The
  // robust claim is that the lowest class carries clearly more jitter than
  // the upper classes.
  StudyAConfig c;
  c.sim_time = 2.0e5;
  c.seed = 7;
  const auto r = run_study_a(c);
  ASSERT_EQ(r.jitter.size(), 4u);
  for (const double j : r.jitter) EXPECT_GT(j, 0.0);
  EXPECT_GT(r.jitter[0], 1.5 * r.jitter[2]);
  EXPECT_GT(r.jitter[0], 1.5 * r.jitter[3]);
  EXPECT_GT(r.jitter[1], r.jitter[3]);
}

}  // namespace
}  // namespace pds
