// The Link transmission server: timing, accounting, work conservation.
#include <gtest/gtest.h>

#include <vector>

#include "sched/fcfs.hpp"
#include "sched/link.hpp"
#include "sched/wtp.hpp"

namespace pds {
namespace {

Packet make_packet(std::uint64_t id, ClassId cls, std::uint32_t bytes) {
  Packet p;
  p.id = id;
  p.cls = cls;
  p.size_bytes = bytes;
  return p;
}

struct Departure {
  std::uint64_t id;
  double wait;
  double completed;
  double cum;
  std::uint32_t hops;
};

struct Fixture {
  Simulator sim;
  FcfsScheduler sched{2};
  std::vector<Departure> out;
  Link link{sim, sched, 100.0, [this](Packet&& p, SimTime w, SimTime now) {
              out.push_back(Departure{p.id, w, now, p.cum_queueing,
                                      p.hops_done});
            }};
};

TEST(Link, TransmissionTakesSizeOverCapacity) {
  Fixture f;
  f.sim.schedule_at(1.0, [&] { f.link.arrive(make_packet(1, 0, 250)); });
  f.sim.run();
  ASSERT_EQ(f.out.size(), 1u);
  EXPECT_DOUBLE_EQ(f.out[0].completed, 3.5);  // 1.0 + 250/100
  EXPECT_DOUBLE_EQ(f.out[0].wait, 0.0);
}

TEST(Link, WaitExcludesOwnTransmission) {
  Fixture f;
  f.sim.schedule_at(0.0, [&] {
    f.link.arrive(make_packet(1, 0, 100));  // tx [0,1)
    f.link.arrive(make_packet(2, 0, 100));  // waits 1, tx [1,2)
  });
  f.sim.run();
  ASSERT_EQ(f.out.size(), 2u);
  EXPECT_DOUBLE_EQ(f.out[1].wait, 1.0);
  EXPECT_DOUBLE_EQ(f.out[1].completed, 2.0);
}

TEST(Link, UpdatesCumulativeQueueingAndHops) {
  Fixture f;
  f.sim.schedule_at(0.0, [&] {
    Packet p = make_packet(1, 0, 100);
    p.cum_queueing = 7.5;  // from previous hops
    p.hops_done = 2;
    f.link.arrive(std::move(p));
    f.link.arrive(make_packet(2, 0, 100));
  });
  f.sim.run();
  EXPECT_DOUBLE_EQ(f.out[0].cum, 7.5);   // no wait added at this hop
  EXPECT_EQ(f.out[0].hops, 3u);
  EXPECT_DOUBLE_EQ(f.out[1].cum, 1.0);   // fresh packet, 1 tu wait
  EXPECT_EQ(f.out[1].hops, 1u);
}

TEST(Link, BusyFlagAndCounters) {
  Fixture f;
  EXPECT_FALSE(f.link.busy());
  f.sim.schedule_at(0.0, [&] {
    f.link.arrive(make_packet(1, 0, 300));
    EXPECT_TRUE(f.link.busy());
  });
  f.sim.run();
  EXPECT_FALSE(f.link.busy());
  EXPECT_EQ(f.link.packets_sent(), 1u);
  EXPECT_EQ(f.link.bytes_sent(), 300u);
  EXPECT_DOUBLE_EQ(f.link.busy_time(), 3.0);
}

TEST(Link, BusyTimeEqualsBytesOverCapacity) {
  Fixture f;
  f.sim.schedule_at(0.0, [&] {
    for (std::uint64_t i = 0; i < 20; ++i) {
      f.link.arrive(make_packet(i, 0, 40 + static_cast<std::uint32_t>(i)));
    }
  });
  f.sim.run();
  EXPECT_DOUBLE_EQ(
      f.link.busy_time(),
      static_cast<double>(f.link.bytes_sent()) / f.link.capacity());
}

TEST(Link, IdleGapsDoNotCountAsBusy) {
  Fixture f;
  f.sim.schedule_at(0.0, [&] { f.link.arrive(make_packet(1, 0, 100)); });
  f.sim.schedule_at(50.0, [&] { f.link.arrive(make_packet(2, 0, 100)); });
  f.sim.run();
  EXPECT_DOUBLE_EQ(f.link.busy_time(), 2.0);
  EXPECT_DOUBLE_EQ(f.out[1].completed, 51.0);
}

TEST(Link, WorkConservingAcrossBusyPeriod) {
  // Back-to-back service: each departure is exactly one transmission time
  // after the previous one while the backlog lasts.
  Fixture f;
  f.sim.schedule_at(0.0, [&] {
    for (std::uint64_t i = 0; i < 10; ++i) {
      f.link.arrive(make_packet(i, 0, 100));
    }
  });
  f.sim.run();
  for (std::size_t i = 0; i < f.out.size(); ++i) {
    EXPECT_DOUBLE_EQ(f.out[i].completed, static_cast<double>(i + 1));
  }
}

TEST(Link, SchedulerChoiceGovernsServiceOrder) {
  Simulator sim;
  SchedulerConfig c;
  c.sdp = {1.0, 8.0};
  WtpScheduler wtp(c);
  std::vector<std::uint64_t> order;
  Link link(sim, wtp, 100.0, [&](Packet&& p, SimTime, SimTime) {
    order.push_back(p.id);
  });
  sim.schedule_at(0.0, [&] {
    link.arrive(make_packet(1, 0, 100));  // seizes the line
    link.arrive(make_packet(2, 0, 100));
    link.arrive(make_packet(3, 1, 100));  // higher class, same wait
  });
  sim.run();
  ASSERT_EQ(order.size(), 3u);
  EXPECT_EQ(order[1], 3u);  // WTP promotes the class-1 packet
  EXPECT_EQ(order[2], 2u);
}

TEST(Link, ValidatesConstruction) {
  Simulator sim;
  FcfsScheduler sched(1);
  EXPECT_THROW(Link(sim, sched, 0.0, [](Packet&&, SimTime, SimTime) {}),
               std::invalid_argument);
  EXPECT_THROW(Link(sim, sched, 10.0, Link::DepartureHandler{}),
               std::invalid_argument);
}

}  // namespace
}  // namespace pds
