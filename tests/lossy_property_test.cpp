// Invariant sweep for the finite-buffer lossy link across drop policies,
// schedulers and buffer sizes:
//   1. Flow conservation: arrivals == departures + drops + final backlog.
//   2. The buffer bound is never exceeded.
//   3. Monotonicity: loss does not decrease when the offered load grows.
//   4. A generously buffered, underloaded link drops nothing.
#include <gtest/gtest.h>

#include <memory>

#include "dropper/lossy_link.hpp"
#include "rng/distributions.hpp"
#include "sched/factory.hpp"

namespace pds {
namespace {

struct Case {
  SchedulerKind kind;
  DropPolicy policy;
  std::uint64_t buffer;
  double offered;  // relative to capacity
};

std::string case_name(const testing::TestParamInfo<Case>& info) {
  const auto& c = info.param;
  return to_string(c.kind) + "_" +
         (c.policy == DropPolicy::kPlr ? "plr" : "tail") + "_b" +
         std::to_string(c.buffer) + "_o" +
         std::to_string(static_cast<int>(c.offered * 100));
}

struct RunOutcome {
  std::uint64_t arrivals = 0;
  std::uint64_t departures = 0;
  std::uint64_t drops = 0;
  std::uint64_t final_backlog = 0;  // queued + the packet in transmission
  std::uint64_t max_backlog = 0;
};

RunOutcome drive(const Case& c, std::uint64_t seed) {
  Simulator sim;
  SchedulerConfig sc;
  sc.sdp = {1.0, 2.0, 4.0, 8.0};
  sc.link_capacity = 100.0;
  auto sched = make_scheduler(c.kind, sc);

  std::unique_ptr<PlrDropper> plr;
  if (c.policy == DropPolicy::kPlr) {
    plr = std::make_unique<PlrDropper>(
        std::vector<double>{8.0, 4.0, 2.0, 1.0}, 0);
  }

  RunOutcome out;
  LossyLink link(
      sim, *sched, 100.0, c.buffer, c.policy, std::move(plr),
      [&](Packet&&, SimTime, SimTime) { ++out.departures; },
      [&](const Packet&, SimTime) { ++out.drops; });

  Rng rng(seed);
  const ExponentialDist gap(1.0 / c.offered);  // 100 B pkts at 100 B/tu
  double t = 0.0;
  for (int i = 0; i < 20000; ++i) {
    t += gap.sample(rng);
    sim.run_until(t);
    Packet p;
    p.id = static_cast<std::uint64_t>(i);
    p.cls = static_cast<ClassId>(rng.uniform_index(4));
    p.size_bytes = 100;
    p.created = t;
    link.arrive(std::move(p));
    ++out.arrivals;
    std::uint64_t backlog = 0;
    for (ClassId cls = 0; cls < 4; ++cls) {
      backlog += sched->backlog_packets(cls);
    }
    out.max_backlog = std::max(out.max_backlog, backlog);
  }
  // Snapshot the backlog before draining; a packet mid-transmission has
  // been dequeued but not yet delivered, so it counts as backlog here.
  std::uint64_t backlog = link.link().busy() ? 1 : 0;
  for (ClassId cls = 0; cls < 4; ++cls) {
    backlog += sched->backlog_packets(cls);
  }
  out.final_backlog = backlog;
  return out;
}

class LossyInvariants : public testing::TestWithParam<Case> {};

TEST_P(LossyInvariants, ConservesPacketsAndRespectsBuffer) {
  const auto out = drive(GetParam(), 11);
  EXPECT_EQ(out.arrivals,
            out.departures + out.drops + out.final_backlog);
  EXPECT_LE(out.max_backlog, GetParam().buffer);
  if (GetParam().offered > 1.1) {
    EXPECT_GT(out.drops, 0u) << "sustained overload must shed";
  }
}

TEST_P(LossyInvariants, LossMonotoneInOfferedLoad) {
  auto base = GetParam();
  auto heavier = base;
  heavier.offered = base.offered + 0.4;
  const auto lo = drive(base, 13);
  const auto hi = drive(heavier, 13);
  const double lo_rate =
      static_cast<double>(lo.drops) / static_cast<double>(lo.arrivals);
  const double hi_rate =
      static_cast<double>(hi.drops) / static_cast<double>(hi.arrivals);
  EXPECT_GE(hi_rate + 0.02, lo_rate);  // small slack for randomness
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, LossyInvariants,
    testing::ValuesIn(std::vector<Case>{
        {SchedulerKind::kWtp, DropPolicy::kPlr, 16, 1.3},
        {SchedulerKind::kWtp, DropPolicy::kPlr, 128, 1.3},
        {SchedulerKind::kWtp, DropPolicy::kDropIncoming, 16, 1.3},
        {SchedulerKind::kWtp, DropPolicy::kDropIncoming, 128, 0.8},
        {SchedulerKind::kBpr, DropPolicy::kPlr, 64, 1.2},
        {SchedulerKind::kStrictPriority, DropPolicy::kPlr, 32, 1.5},
        {SchedulerKind::kAdditiveWtp, DropPolicy::kDropIncoming, 32, 1.2},
        {SchedulerKind::kPad, DropPolicy::kPlr, 64, 1.4},
        {SchedulerKind::kHpd, DropPolicy::kPlr, 64, 1.4},
        {SchedulerKind::kDrr, DropPolicy::kPlr, 64, 1.3},
    }),
    case_name);

TEST(LossyInvariants, UnderloadedGenerousBufferDropsNothing) {
  const Case c{SchedulerKind::kWtp, DropPolicy::kPlr, 5000, 0.6};
  const auto out = drive(c, 17);
  EXPECT_EQ(out.drops, 0u);
  EXPECT_EQ(out.arrivals,
            out.departures + out.final_backlog);
}

}  // namespace
}  // namespace pds
