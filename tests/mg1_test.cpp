// M/G/1 analytics, and the strongest end-to-end validation we have of the
// simulation substrate: Pollaczek–Khinchine against a simulated FCFS queue
// with Poisson arrivals, which must agree to statistical accuracy.
#include <gtest/gtest.h>

#include <memory>

#include "core/mg1.hpp"
#include "core/model.hpp"
#include "dsim/simulator.hpp"
#include "packet/size_law.hpp"
#include "sched/fcfs.hpp"
#include "sched/link.hpp"
#include "stats/running_stats.hpp"
#include "traffic/source.hpp"

namespace pds {
namespace {

TEST(ServiceMoments, PaperSizeLawAtStudyACapacity) {
  const auto m = service_moments(paper_size_law(), kStudyACapacity);
  // E[S] is one p-unit by construction.
  EXPECT_NEAR(m.mean, kPUnit, 1e-9);
  // E[S^2] = sum w_i (L_i/R)^2 with L in {40, 550, 1500}.
  const double r = kStudyACapacity;
  const double expected = 0.4 * (40 / r) * (40 / r) +
                          0.5 * (550 / r) * (550 / r) +
                          0.1 * (1500 / r) * (1500 / r);
  EXPECT_NEAR(m.second, expected, 1e-9);
}

TEST(PkWaitingTime, MM1SpecialCase) {
  // Exponential service: E[S^2] = 2/mu^2, so W = rho / (mu - lambda).
  // Approximate an exponential size law by its two moments directly.
  const ServiceMoments m{1.0, 2.0};  // mu = 1
  const double lambda = 0.5;
  EXPECT_NEAR(pk_waiting_time(lambda, m), 0.5 / (1.0 - 0.5), 1e-12);
}

TEST(PkWaitingTime, DeterministicServiceIsHalfOfExponential) {
  const ServiceMoments md{1.0, 1.0};  // D/1: E[S^2] = E[S]^2
  const ServiceMoments me{1.0, 2.0};  // M/1
  const double lambda = 0.8;
  EXPECT_NEAR(pk_waiting_time(lambda, md),
              0.5 * pk_waiting_time(lambda, me), 1e-12);
}

TEST(PkWaitingTime, ZeroRateZeroWait) {
  EXPECT_DOUBLE_EQ(pk_waiting_time(0.0, {1.0, 2.0}), 0.0);
}

TEST(PkWaitingTime, RejectsUnstableQueue) {
  EXPECT_THROW(pk_waiting_time(1.0, {1.0, 2.0}), std::invalid_argument);
  EXPECT_THROW(pk_waiting_time(1.5, {1.0, 2.0}), std::invalid_argument);
}

// The validation test: simulate M/G/1 (Poisson arrivals, paper size law,
// FCFS) and compare the measured mean wait with Pollaczek–Khinchine.
TEST(Mg1Validation, SimulatedFcfsMatchesPollaczekKhinchine) {
  for (const double rho : {0.5, 0.8, 0.9}) {
    const double lambda = rho / kPUnit;  // packets per tu
    Simulator sim;
    PacketIdAllocator ids;
    FcfsScheduler sched(1);
    RunningStats waits;
    const double warmup = 5.0e4;
    Link link(sim, sched, kStudyACapacity,
              [&](Packet&&, SimTime wait, SimTime now) {
                if (now >= warmup) waits.add(wait);
              });
    RenewalSource src(sim, ids, 0, exponential_gaps(1.0 / lambda),
                      law_size(paper_size_law()), Rng(static_cast<std::uint64_t>(rho * 1000)),
                      [&](Packet p) { link.arrive(std::move(p)); });
    src.start(0.0);
    sim.run_until(1.5e6);

    const auto m = service_moments(paper_size_law(), kStudyACapacity);
    const double theory = pk_waiting_time(lambda, m);
    EXPECT_NEAR(waits.mean(), theory, 0.15 * theory)
        << "rho = " << rho << ", theory W = " << theory;
  }
}

TEST(Mg1Feasibility, EqualDdpsFeasibleForPoisson) {
  const std::vector<double> lambda{0.02, 0.02, 0.02, 0.02};
  const auto bad = mg1_infeasible_subsets({1.0, 1.0, 1.0, 1.0}, lambda,
                                          paper_size_law(), kStudyACapacity);
  EXPECT_TRUE(bad.empty());
}

TEST(Mg1Feasibility, PaperDdpsFeasibleAtHeavyPoissonLoad) {
  // rho = 0.95 split 40/30/20/10.
  std::vector<double> lambda;
  for (const double f : {0.4, 0.3, 0.2, 0.1}) {
    lambda.push_back(0.95 * f / kPUnit);
  }
  const auto bad =
      mg1_infeasible_subsets(ddp_from_sdp({1.0, 2.0, 4.0, 8.0}), lambda,
                             paper_size_law(), kStudyACapacity);
  EXPECT_TRUE(bad.empty());
}

TEST(Mg1Feasibility, ExtremeSpacingInfeasible) {
  std::vector<double> lambda;
  for (const double f : {0.4, 0.3, 0.2, 0.1}) {
    lambda.push_back(0.95 * f / kPUnit);
  }
  const auto bad = mg1_infeasible_subsets({1.0, 1e-3, 1e-6, 1e-9}, lambda,
                                          paper_size_law(), kStudyACapacity);
  EXPECT_FALSE(bad.empty());
  // The top class alone must be among the violated subsets: it cannot beat
  // its solo M/G/1 wait.
  bool top_alone = false;
  for (const auto mask : bad) {
    if (mask == (1u << 3)) top_alone = true;
  }
  EXPECT_TRUE(top_alone);
}

TEST(Mg1Feasibility, PoissonFeasibilityIsNearlyLoadInvariant) {
  // Under Pollaczek–Khinchine both the targets and the subset floors scale
  // like lambda/(1 - rho), so the paper's 8:1 spread stays feasible from
  // light to heavy Poisson load — what breaks feasibility is the *spacing*,
  // not the load level (contrast with finite bursty traces).
  for (const double rho : {0.3, 0.6, 0.9}) {
    std::vector<double> lambda;
    for (const double f : {0.4, 0.3, 0.2, 0.1}) {
      lambda.push_back(rho * f / kPUnit);
    }
    const auto bad =
        mg1_infeasible_subsets(ddp_from_sdp({1.0, 2.0, 4.0, 8.0}), lambda,
                               paper_size_law(), kStudyACapacity);
    EXPECT_TRUE(bad.empty()) << "rho = " << rho;
  }
}

TEST(Mg1Feasibility, SpacingHasAFeasibilityThreshold) {
  // At rho = 0.95 a per-class spacing of 4 is schedulable but a spacing of
  // 10 demands more than the top class's solo-M/G/1 floor allows.
  std::vector<double> lambda;
  for (const double f : {0.4, 0.3, 0.2, 0.1}) {
    lambda.push_back(0.95 * f / kPUnit);
  }
  const auto make_ddp = [](double a) {
    return std::vector<double>{1.0, 1.0 / a, 1.0 / (a * a),
                               1.0 / (a * a * a)};
  };
  EXPECT_TRUE(mg1_infeasible_subsets(make_ddp(4.0), lambda, paper_size_law(),
                                     kStudyACapacity)
                  .empty());
  EXPECT_FALSE(mg1_infeasible_subsets(make_ddp(10.0), lambda,
                                      paper_size_law(), kStudyACapacity)
                   .empty());
}

}  // namespace
}  // namespace pds
