#include <gtest/gtest.h>

#include "core/model.hpp"

namespace pds {
namespace {

const std::vector<double> kDdp{1.0, 0.5, 0.25, 0.125};      // from s=1,2,4,8
const std::vector<double> kLambda{0.4, 0.3, 0.2, 0.1};

TEST(Model, DdpFromSdpInverts) {
  const auto ddp = ddp_from_sdp({1.0, 2.0, 4.0, 8.0});
  ASSERT_EQ(ddp.size(), 4u);
  for (std::size_t i = 0; i < 4; ++i) EXPECT_DOUBLE_EQ(ddp[i], kDdp[i]);
  EXPECT_THROW(ddp_from_sdp({}), std::invalid_argument);
  EXPECT_THROW(ddp_from_sdp({0.0}), std::invalid_argument);
}

TEST(Model, ValidateDdpOrdering) {
  EXPECT_NO_THROW(validate_ddp(kDdp));
  EXPECT_NO_THROW(validate_ddp({1.0, 1.0}));  // equal is allowed ("no worse")
  EXPECT_THROW(validate_ddp({0.5, 1.0}), std::invalid_argument);
  EXPECT_THROW(validate_ddp({1.0, 0.0}), std::invalid_argument);
  EXPECT_THROW(validate_ddp({}), std::invalid_argument);
}

TEST(Model, Eq6SatisfiesConservationLaw) {
  const double d_agg = 42.0;
  const auto d = proportional_delays(kDdp, kLambda, d_agg);
  double lhs = 0.0, lambda_total = 0.0;
  for (std::size_t i = 0; i < d.size(); ++i) {
    lhs += kLambda[i] * d[i];
    lambda_total += kLambda[i];
  }
  EXPECT_NEAR(lhs, lambda_total * d_agg, 1e-12);  // Eq. 5
}

TEST(Model, Eq6SatisfiesProportionalConstraints) {
  const auto d = proportional_delays(kDdp, kLambda, 42.0);
  for (std::size_t i = 0; i < d.size(); ++i) {
    for (std::size_t j = 0; j < d.size(); ++j) {
      EXPECT_NEAR(d[i] / d[j], kDdp[i] / kDdp[j], 1e-12);  // Eq. 1
    }
  }
}

TEST(Model, EqualDdpsReproduceFcfs) {
  const auto d = proportional_delays({1.0, 1.0, 1.0}, {0.5, 0.3, 0.2}, 10.0);
  for (const double di : d) EXPECT_NEAR(di, 10.0, 1e-12);
}

// Section 3, property 1: every class delay is non-decreasing in every
// class's arrival rate (d_agg held fixed the *aggregate* behaviour enters
// through d(lambda); here we test the structural dependence through the
// weights, raising lambda_j with d(lambda) fixed raises... see below).
//
// Properties 1-2 concern the full system where d(lambda) itself grows with
// load; the closed form lets us verify the *distributional* parts exactly:
TEST(Model, Property2HigherClassLoadHurtsMore) {
  // Moving load into a higher class (larger index, smaller delta) shrinks
  // the weighted sum sum_j delta_j lambda_j, which raises *every* class
  // delay for the same aggregate d(lambda) — and the effect is stronger
  // than moving the same load into a lower class.
  const double d_agg = 10.0;
  const auto base = proportional_delays(kDdp, {0.4, 0.3, 0.2, 0.1}, d_agg);
  const auto more_low = proportional_delays(kDdp, {0.5, 0.3, 0.2, 0.1},
                                            d_agg * (1.1 / 1.0));
  const auto more_high = proportional_delays(kDdp, {0.4, 0.3, 0.2, 0.2},
                                             d_agg * (1.1 / 1.0));
  // Same aggregate-rate increase; the high-class shift hurts class 0 more.
  EXPECT_GT(more_high[0], base[0]);
  EXPECT_GT(more_high[0], more_low[0]);
}

TEST(Model, Property3RaisingOneDdpHelpsEveryoneElse) {
  const std::vector<double> raised{1.0, 0.8, 0.25, 0.125};  // delta_1 up
  const auto base = proportional_delays(kDdp, kLambda, 10.0);
  const auto out = proportional_delays(raised, kLambda, 10.0);
  EXPECT_GT(out[1], base[1]);   // that class gets slower
  EXPECT_LT(out[0], base[0]);   // every other class gets faster
  EXPECT_LT(out[2], base[2]);
  EXPECT_LT(out[3], base[3]);
}

TEST(Model, Property4LoadShiftToHigherClassRaisesAllDelays) {
  // A fraction of class-0 load switches to class 3 (i < j), aggregate
  // unchanged: all delays increase. The reverse shift decreases them.
  const auto base = proportional_delays(kDdp, {0.4, 0.3, 0.2, 0.1}, 10.0);
  const auto up = proportional_delays(kDdp, {0.3, 0.3, 0.2, 0.2}, 10.0);
  const auto down = proportional_delays(kDdp, {0.5, 0.3, 0.2, 0.0 + 1e-9},
                                        10.0);
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_GE(up[i], base[i]);
    EXPECT_LE(down[i], base[i]);
  }
}

TEST(Model, TargetRatioMatchesDdpQuotient) {
  EXPECT_DOUBLE_EQ(target_ratio(kDdp, 0, 1), 2.0);
  EXPECT_DOUBLE_EQ(target_ratio(kDdp, 0, 3), 8.0);
  EXPECT_DOUBLE_EQ(target_ratio(kDdp, 3, 0), 0.125);
  EXPECT_THROW(target_ratio(kDdp, 0, 9), std::invalid_argument);
}

TEST(Model, RejectsDegenerateInputs) {
  EXPECT_THROW(proportional_delays(kDdp, {0.1, 0.2}, 1.0),
               std::invalid_argument);
  EXPECT_THROW(proportional_delays(kDdp, {0.0, 0.0, 0.0, 0.0}, 1.0),
               std::invalid_argument);
  EXPECT_THROW(proportional_delays(kDdp, {-0.1, 0.3, 0.2, 0.1}, 1.0),
               std::invalid_argument);
  EXPECT_THROW(proportional_delays(kDdp, kLambda, -1.0),
               std::invalid_argument);
}

}  // namespace
}  // namespace pds
