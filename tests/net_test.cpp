#include <gtest/gtest.h>

#include "net/chain.hpp"
#include "net/study_b.hpp"

namespace pds {
namespace {

SchedulerConfig chain_config() {
  SchedulerConfig c;
  c.sdp = {1.0, 2.0};
  c.link_capacity = 100.0;
  return c;
}

Packet user_packet(std::uint64_t id, ClassId cls, FlowId flow) {
  Packet p;
  p.id = id;
  p.cls = cls;
  p.flow = flow;
  p.size_bytes = 100;
  return p;
}

TEST(ChainNetwork, UserPacketTraversesEveryHop) {
  Simulator sim;
  std::vector<Packet> exited;
  ChainNetwork net(sim, 3, SchedulerKind::kWtp, chain_config(), 100.0,
                   [&](const Packet& p, SimTime) { exited.push_back(p); });
  sim.schedule_at(0.0, [&] { net.inject_user(user_packet(1, 0, 5)); });
  sim.run();
  ASSERT_EQ(exited.size(), 1u);
  EXPECT_EQ(exited[0].hops_done, 3u);
  EXPECT_EQ(exited[0].flow, 5u);
  // Uncontended path: zero queueing at every hop.
  EXPECT_DOUBLE_EQ(exited[0].cum_queueing, 0.0);
}

TEST(ChainNetwork, CrossTrafficExitsAfterOneHop) {
  Simulator sim;
  std::vector<Packet> exited;
  ChainNetwork net(sim, 3, SchedulerKind::kWtp, chain_config(), 100.0,
                   [&](const Packet& p, SimTime) { exited.push_back(p); });
  Packet cross;
  cross.id = 2;
  cross.cls = 1;
  cross.size_bytes = 100;
  sim.schedule_at(0.0, [&] { net.inject_cross(1, std::move(cross)); });
  sim.run();
  EXPECT_TRUE(exited.empty());  // cross traffic never reaches the exit
  EXPECT_EQ(net.cross_sunk(), 1u);
  EXPECT_EQ(net.link(1).packets_sent(), 1u);
  EXPECT_EQ(net.link(0).packets_sent(), 0u);
}

TEST(ChainNetwork, QueueingAccumulatesAcrossHops) {
  Simulator sim;
  std::vector<Packet> exited;
  ChainNetwork net(sim, 2, SchedulerKind::kWtp, chain_config(), 100.0,
                   [&](const Packet& p, SimTime) { exited.push_back(p); });
  // Two user packets back-to-back: the second queues behind the first at
  // hop 0 AND at hop 1? At hop 1 they arrive spaced by one transmission
  // time, so only hop 0 queues it (wait = 1 tu).
  sim.schedule_at(0.0, [&] {
    net.inject_user(user_packet(1, 0, 0));
    net.inject_user(user_packet(2, 0, 1));
  });
  sim.run();
  ASSERT_EQ(exited.size(), 2u);
  EXPECT_DOUBLE_EQ(exited[0].cum_queueing, 0.0);
  EXPECT_DOUBLE_EQ(exited[1].cum_queueing, 1.0);
}

TEST(ChainNetwork, HopObserverSeesEveryDeparture) {
  Simulator sim;
  ChainNetwork net(sim, 2, SchedulerKind::kWtp, chain_config(), 100.0,
                   [](const Packet&, SimTime) {});
  std::vector<std::tuple<std::uint32_t, std::uint64_t, double>> seen;
  net.set_hop_observer(
      [&](std::uint32_t hop, const Packet& p, SimTime wait, SimTime) {
        seen.emplace_back(hop, p.id, wait);
      });
  sim.schedule_at(0.0, [&] {
    net.inject_user(user_packet(1, 0, 0));   // traverses hops 0 and 1
    Packet cross;
    cross.id = 2;
    cross.cls = 1;
    cross.size_bytes = 100;
    net.inject_cross(1, std::move(cross));   // hop 1 only
  });
  sim.run();
  // User packet: 2 observations; cross packet: 1.
  ASSERT_EQ(seen.size(), 3u);
  int user_hits = 0, cross_hits = 0;
  for (const auto& [hop, id, wait] : seen) {
    EXPECT_GE(wait, 0.0);
    (id == 1 ? user_hits : cross_hits)++;
    EXPECT_LT(hop, 2u);
  }
  EXPECT_EQ(user_hits, 2);
  EXPECT_EQ(cross_hits, 1);
}

TEST(ChainNetwork, ValidatesInputs) {
  Simulator sim;
  const auto exit_handler = [](const Packet&, SimTime) {};
  EXPECT_THROW(ChainNetwork(sim, 0, SchedulerKind::kWtp, chain_config(),
                            100.0, exit_handler),
               std::invalid_argument);
  ChainNetwork net(sim, 2, SchedulerKind::kWtp, chain_config(), 100.0,
                   exit_handler);
  Packet no_flow;
  no_flow.cls = 0;
  no_flow.size_bytes = 10;
  EXPECT_THROW(net.inject_user(std::move(no_flow)), std::invalid_argument);
  Packet flowed = user_packet(1, 0, 1);
  EXPECT_THROW(net.inject_cross(5, std::move(flowed)),
               std::invalid_argument);
}

// ------------------------------------------------------------- Study B

StudyBConfig quick_b() {
  StudyBConfig c;
  c.hops = 2;
  c.user_experiments = 10;
  c.warmup_s = 3.0;
  c.utilization = 0.9;
  c.seed = 3;
  return c;
}

TEST(StudyB, AllFlowsCompleteAndRdIsPlausible) {
  const auto r = run_study_b(quick_b());
  EXPECT_EQ(r.experiments, 10u);
  // WTP at rho = 0.9 over 2 hops: the end-to-end ratio must land in the
  // right neighbourhood of the ideal 2.0.
  EXPECT_GT(r.rd, 1.2);
  EXPECT_LT(r.rd, 3.2);
  ASSERT_EQ(r.mean_e2e_delay_per_class.size(), 4u);
  // Monotone class ordering of mean end-to-end delays.
  for (std::size_t c = 0; c + 1 < 4; ++c) {
    EXPECT_GT(r.mean_e2e_delay_per_class[c],
              r.mean_e2e_delay_per_class[c + 1]);
  }
}

TEST(StudyB, UtilizationIsCalibratedPerHop) {
  auto cfg = quick_b();
  cfg.utilization = 0.85;
  cfg.user_experiments = 8;
  const auto r = run_study_b(cfg);
  ASSERT_EQ(r.mean_utilization_per_hop.size(), 2u);
  for (const double u : r.mean_utilization_per_hop) {
    EXPECT_NEAR(u, 0.85, 0.12);
  }
}

TEST(StudyB, PercentileListMatchesPaper) {
  const auto& ps = study_b_percentiles();
  ASSERT_EQ(ps.size(), 10u);
  EXPECT_DOUBLE_EQ(ps.front(), 10.0);
  EXPECT_DOUBLE_EQ(ps[8], 90.0);
  EXPECT_DOUBLE_EQ(ps.back(), 99.0);
}

TEST(StudyB, ValidatesConfig) {
  auto c = quick_b();
  c.utilization = 0.0;
  EXPECT_THROW(run_study_b(c), std::invalid_argument);
  c = quick_b();
  c.cross_mix = {1.0};
  EXPECT_THROW(run_study_b(c), std::invalid_argument);
  c = quick_b();
  c.hops = 0;
  EXPECT_THROW(run_study_b(c), std::invalid_argument);
  c = quick_b();
  // User flows alone exceeding the utilization target must be rejected.
  c.flow_rate_kbps = 50.0;
  c.flow_packets = 20000;
  EXPECT_THROW(run_study_b(c), std::invalid_argument);
}

TEST(StudyB, DeterministicPerSeed) {
  const auto a = run_study_b(quick_b());
  const auto b = run_study_b(quick_b());
  EXPECT_DOUBLE_EQ(a.rd, b.rd);
  EXPECT_EQ(a.inconsistent_experiments, b.inconsistent_experiments);
}

TEST(StudyB, PerHopStatsAreCoherent) {
  const auto r = run_study_b(quick_b());
  ASSERT_EQ(r.per_hop_class_delay.size(), 2u);
  ASSERT_EQ(r.per_hop_rd.size(), 2u);
  for (std::uint32_t h = 0; h < 2; ++h) {
    // Per-hop class delays ordered (higher class = lower delay) and the
    // per-hop ratio in a heavy-load WTP band.
    for (std::size_t c = 0; c + 1 < 4; ++c) {
      EXPECT_GT(r.per_hop_class_delay[h][c],
                r.per_hop_class_delay[h][c + 1]);
    }
    EXPECT_GT(r.per_hop_rd[h], 1.3);
    EXPECT_LT(r.per_hop_rd[h], 2.6);
  }
}

TEST(StudyB, MoreHopsSmoothTheRatio) {
  // Paper Table 1: deviations cancel over more hops, pulling R_D toward
  // the ideal 2.0. Test the weaker, robust form: both settings stay in a
  // sane band and produce consistent output sizes.
  auto c4 = quick_b();
  c4.hops = 4;
  c4.user_experiments = 8;
  const auto r = run_study_b(c4);
  EXPECT_GT(r.rd, 1.2);
  EXPECT_LT(r.rd, 3.2);
  ASSERT_EQ(r.mean_utilization_per_hop.size(), 4u);
}

}  // namespace
}  // namespace pds
