#include <gtest/gtest.h>

#include <cstdio>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "dsim/simulator.hpp"
#include "dropper/lossy_link.hpp"
#include "obs/metrics.hpp"
#include "obs/probe.hpp"
#include "obs/profiler.hpp"
#include "obs/tracer.hpp"
#include "sched/factory.hpp"
#include "sched/link.hpp"

namespace pds {
namespace {

// Temp-file path helper; the file is removed on destruction.
struct TempFile {
  explicit TempFile(const std::string& name)
      : path(testing::TempDir() + name) {}
  ~TempFile() { std::remove(path.c_str()); }
  std::string path;
};

Packet make_packet(std::uint64_t id, ClassId cls,
                   std::uint32_t bytes = 1000) {
  Packet p;
  p.id = id;
  p.cls = cls;
  p.size_bytes = bytes;
  return p;
}

// ----------------------------------------------------------------- registry

TEST(MetricsRegistry, CounterTracksTotalAndWindowDelta) {
  MetricsRegistry reg;
  Counter& c = reg.counter("arrivals");
  c.inc();
  c.inc(4);
  EXPECT_EQ(c.total(), 5u);
  EXPECT_EQ(c.window_delta(), 5u);
  reg.reset_windows();
  EXPECT_EQ(c.total(), 5u);
  EXPECT_EQ(c.window_delta(), 0u);
  // Find-or-create returns the same object.
  reg.counter("arrivals").inc();
  EXPECT_EQ(c.total(), 6u);
}

TEST(MetricsRegistry, GaugeKeepsValueAcrossWindowResets) {
  MetricsRegistry reg;
  reg.gauge("backlog").set(7.5);
  reg.reset_windows();
  EXPECT_DOUBLE_EQ(reg.gauge("backlog").value(), 7.5);
}

TEST(MetricsRegistry, SummaryKeepsWindowAndTotalViews) {
  MetricsRegistry reg;
  Summary& s = reg.summary("delay");
  s.observe(1.0);
  s.observe(3.0);
  EXPECT_EQ(s.window().count(), 2u);
  EXPECT_DOUBLE_EQ(s.window().mean(), 2.0);
  reg.reset_windows();
  EXPECT_EQ(s.window().count(), 0u);
  s.observe(5.0);
  EXPECT_DOUBLE_EQ(s.window().mean(), 5.0);
  EXPECT_EQ(s.total().count(), 3u);
  EXPECT_DOUBLE_EQ(s.total().mean(), 3.0);
}

TEST(MetricsRegistry, NameIdentifiesExactlyOneKind) {
  MetricsRegistry reg;
  reg.counter("x");
  EXPECT_THROW(reg.gauge("x"), std::invalid_argument);
  EXPECT_THROW(reg.summary("x"), std::invalid_argument);
  reg.gauge("y");
  EXPECT_THROW(reg.counter("y"), std::invalid_argument);
  EXPECT_THROW(reg.counter(""), std::invalid_argument);
  EXPECT_EQ(reg.size(), 2u);
}

// ------------------------------------------------------------------ writer

TEST(MetricsSnapshotWriter, WritesOneRowPerMetricPerWindow) {
  TempFile file("obs_writer.csv");
  Simulator sim;
  MetricsRegistry reg;
  Counter& c = reg.counter("events");
  reg.gauge("level");
  reg.summary("delay").observe(2.0);
  int refreshes = 0;
  MetricsSnapshotWriter writer(sim, reg, file.path, 10.0,
                               [&](SimTime now) {
                                 ++refreshes;
                                 reg.gauge("level").set(now);
                               });
  // One count per unit time, offset half a unit so no increment ties with a
  // snapshot instant: every full window delta is exactly 10.
  for (int t = 0; t < 35; ++t) {
    sim.schedule_at(t + 0.5, [&c] { c.inc(); });
  }
  sim.run_until(35.0);
  writer.flush();  // partial window [30, 35]
  EXPECT_EQ(writer.snapshots_written(), 4u);
  EXPECT_EQ(refreshes, 4);

  const auto rows = load_metrics_csv(file.path);
  ASSERT_EQ(rows.size(), 4u * 3u);
  // Counter rows: cumulative total in `value`, window delta in `count`.
  std::vector<MetricsRow> counter_rows;
  for (const auto& r : rows) {
    if (r.type == "counter") counter_rows.push_back(r);
  }
  ASSERT_EQ(counter_rows.size(), 4u);
  EXPECT_DOUBLE_EQ(counter_rows[0].time, 10.0);
  EXPECT_DOUBLE_EQ(counter_rows[0].value, 10.0);
  EXPECT_DOUBLE_EQ(counter_rows[0].count, 10.0);
  EXPECT_DOUBLE_EQ(counter_rows[3].time, 35.0);
  EXPECT_DOUBLE_EQ(counter_rows[3].value, 35.0);
  EXPECT_DOUBLE_EQ(counter_rows[3].count, 5.0);
  // The gauge was refreshed just before each snapshot.
  for (const auto& r : rows) {
    if (r.type == "gauge") {
      EXPECT_DOUBLE_EQ(r.value, r.time);
    }
  }
  // The summary observation lands in the first window only.
  for (const auto& r : rows) {
    if (r.type == "summary") {
      EXPECT_DOUBLE_EQ(r.count, r.time <= 10.0 ? 1.0 : 0.0);
    }
  }
}

TEST(MetricsSnapshotWriter, FlushIsIdempotentAtSnapshotInstant) {
  TempFile file("obs_flush.csv");
  Simulator sim;
  MetricsRegistry reg;
  reg.counter("events");
  MetricsSnapshotWriter writer(sim, reg, file.path, 10.0);
  sim.schedule_at(20.0, [] {});
  sim.run_until(20.0);
  writer.flush();  // t=20 row was already written by the ticker
  writer.flush();
  EXPECT_EQ(writer.snapshots_written(), 2u);
}

TEST(MetricsSnapshotWriter, FormatFollowsExtension) {
  EXPECT_EQ(MetricsSnapshotWriter::format_for_path("m.jsonl"),
            MetricsFormat::kJsonl);
  EXPECT_EQ(MetricsSnapshotWriter::format_for_path("m.csv"),
            MetricsFormat::kCsv);
  EXPECT_EQ(MetricsSnapshotWriter::format_for_path("metrics"),
            MetricsFormat::kCsv);
}

TEST(MetricsSnapshotWriter, JsonlRowsAreWellFormedLines) {
  TempFile file("obs_writer.jsonl");
  Simulator sim;
  MetricsRegistry reg;
  reg.counter("events").inc(3);
  reg.summary("delay").observe(1.5);
  MetricsSnapshotWriter writer(sim, reg, file.path, 5.0);
  sim.schedule_at(5.0, [] {});
  sim.run_until(5.0);
  writer.flush();  // commits the atomic file under its final name
  std::ifstream in(file.path);
  std::string line;
  std::size_t lines = 0;
  while (std::getline(in, line)) {
    ++lines;
    EXPECT_EQ(line.front(), '{');
    EXPECT_EQ(line.back(), '}');
    EXPECT_NE(line.find("\"time\":5"), std::string::npos);
  }
  EXPECT_EQ(lines, 2u);
}

// ------------------------------------------------------------------ tracer

TEST(PacketTracer, SamplingIsDeterministicPerSeed) {
  PacketTracer a(0.3, 42);
  PacketTracer b(0.3, 42);
  PacketTracer c(0.3, 43);
  std::set<std::uint64_t> set_a, set_c;
  for (std::uint64_t id = 0; id < 2000; ++id) {
    EXPECT_EQ(a.sampled(id), b.sampled(id));
    if (a.sampled(id)) set_a.insert(id);
    if (c.sampled(id)) set_c.insert(id);
  }
  // Roughly the requested fraction...
  EXPECT_NEAR(static_cast<double>(set_a.size()) / 2000.0, 0.3, 0.05);
  // ...and a different seed picks a different subset.
  EXPECT_NE(set_a, set_c);
}

TEST(PacketTracer, RateZeroAndOneAreExact) {
  PacketTracer none(0.0, 1);
  PacketTracer all(1.0, 1);
  for (std::uint64_t id = 0; id < 100; ++id) {
    EXPECT_FALSE(none.sampled(id));
    EXPECT_TRUE(all.sampled(id));
  }
}

TEST(PacketTracer, RejectsRateOutsideUnitInterval) {
  EXPECT_THROW(PacketTracer(-0.1, 1), std::invalid_argument);
  EXPECT_THROW(PacketTracer(1.1, 1), std::invalid_argument);
}

TEST(PacketTracer, WholeLifecycleIsSampledOrNot) {
  PacketTracer tracer(0.5, 7);
  const ProbeContext ctx{2, 5, 5000};
  for (std::uint64_t id = 0; id < 50; ++id) {
    const Packet p = make_packet(id, 1);
    tracer.on_arrive(p, ctx, 1.0);
    tracer.on_enqueue(p, ctx, 1.0);
    tracer.on_dequeue(p, ctx, 2.0, 1.0);
    tracer.on_depart(p, ctx, 3.0, 1.0);
  }
  std::set<std::uint64_t> traced;
  for (const auto& r : tracer.records()) traced.insert(r.packet_id);
  for (const std::uint64_t id : traced) {
    EXPECT_TRUE(tracer.sampled(id));
  }
  // Every sampled packet has all four lifecycle records.
  EXPECT_EQ(tracer.records().size(), traced.size() * 4);
}

TEST(PacketTracer, CsvRoundTripPreservesRecords) {
  TempFile file("obs_trace.csv");
  PacketTracer tracer(1.0, 1);
  const ProbeContext ctx{1, 3, 3000};
  const Packet p = make_packet(11, 2, 1500);
  tracer.on_arrive(p, ctx, 10.5);
  tracer.on_dequeue(p, ctx, 12.25, 1.75);
  tracer.on_drop(make_packet(12, 0), ProbeContext{0, 0, 0}, 13.0);
  tracer.save(file.path);

  const auto loaded = PacketTracer::load(file.path);
  ASSERT_EQ(loaded.size(), 3u);
  EXPECT_DOUBLE_EQ(loaded[0].time, 10.5);
  EXPECT_EQ(loaded[0].packet_id, 11u);
  EXPECT_EQ(loaded[0].kind, TraceEventKind::kArrive);
  EXPECT_EQ(loaded[0].cls, 2);
  EXPECT_EQ(loaded[0].hop, 1u);
  EXPECT_EQ(loaded[0].size_bytes, 1500u);
  EXPECT_EQ(loaded[0].backlog_packets, 3u);
  EXPECT_EQ(loaded[0].backlog_bytes, 3000u);
  EXPECT_EQ(loaded[1].kind, TraceEventKind::kDequeue);
  EXPECT_DOUBLE_EQ(loaded[1].wait, 1.75);
  EXPECT_EQ(loaded[2].kind, TraceEventKind::kDrop);
}

TEST(TraceEventKind, StringRoundTrip) {
  for (const auto kind :
       {TraceEventKind::kArrive, TraceEventKind::kEnqueue,
        TraceEventKind::kDequeue, TraceEventKind::kDepart,
        TraceEventKind::kDrop}) {
    EXPECT_EQ(trace_event_kind_from_string(to_string(kind)), kind);
  }
  EXPECT_THROW(trace_event_kind_from_string("bogus"), std::invalid_argument);
}

// ------------------------------------------------------------ probe wiring

// Counts lifecycle events without sampling, for exactness checks.
class CountingProbe final : public PacketProbe {
 public:
  void on_arrive(const Packet&, const ProbeContext&, SimTime) override {
    ++arrives;
  }
  void on_enqueue(const Packet&, const ProbeContext&, SimTime) override {
    ++enqueues;
  }
  void on_dequeue(const Packet&, const ProbeContext&, SimTime,
                  SimTime) override {
    ++dequeues;
  }
  void on_depart(const Packet& p, const ProbeContext& ctx, SimTime,
                 SimTime wait) override {
    ++departs;
    last_hop = ctx.hop;
    last_wait = wait;
    last_id = p.id;
  }
  void on_drop(const Packet&, const ProbeContext&, SimTime) override {
    ++drops;
  }

  std::uint64_t arrives = 0;
  std::uint64_t enqueues = 0;
  std::uint64_t dequeues = 0;
  std::uint64_t departs = 0;
  std::uint64_t drops = 0;
  std::uint32_t last_hop = 0;
  SimTime last_wait = -1.0;
  std::uint64_t last_id = 0;
};

// The wiring tests need the notification sites compiled in; under
// -DPDS_OBS=OFF the data path emits nothing by design.
#if PDS_OBS_ENABLED

TEST(ProbeWiring, LinkEmitsExactlyOneLifecyclePerTransmittedPacket) {
  Simulator sim;
  SchedulerConfig config;
  config.sdp = {1.0, 2.0};
  config.link_capacity = 100.0;
  const auto sched = make_scheduler(SchedulerKind::kWtp, config);
  std::uint64_t handler_departs = 0;
  Link link(sim, *sched, config.link_capacity,
            [&](Packet&&, SimTime, SimTime) { ++handler_departs; });
  CountingProbe probe;
  link.set_probe(&probe, /*hop=*/3);

  constexpr std::uint64_t kPackets = 40;
  for (std::uint64_t i = 0; i < kPackets; ++i) {
    sim.schedule_at(static_cast<SimTime>(i) * 2.0, [&link, i] {
      link.arrive(make_packet(i, static_cast<ClassId>(i % 2)));
    });
  }
  sim.run();

  EXPECT_EQ(link.packets_sent(), kPackets);
  EXPECT_EQ(handler_departs, kPackets);
  EXPECT_EQ(probe.arrives, kPackets);
  EXPECT_EQ(probe.enqueues, kPackets);
  EXPECT_EQ(probe.dequeues, kPackets);
  EXPECT_EQ(probe.departs, kPackets);
  EXPECT_EQ(probe.drops, 0u);
  EXPECT_EQ(probe.last_hop, 3u);
  EXPECT_GE(probe.last_wait, 0.0);

  // Detaching stops emission.
  link.set_probe(nullptr);
  sim.schedule_at(sim.now() + 1.0,
                  [&link] { link.arrive(make_packet(999, 0)); });
  sim.run();
  EXPECT_EQ(probe.arrives, kPackets);
}

TEST(ProbeWiring, LossyLinkEmitsExactlyOneDropPerLostPacket) {
  Simulator sim;
  SchedulerConfig config;
  config.sdp = {1.0, 2.0};
  config.link_capacity = 1.0;  // slow link so the buffer fills
  const auto sched = make_scheduler(SchedulerKind::kWtp, config);
  std::uint64_t handler_drops = 0;
  LossyLink lossy(sim, *sched, config.link_capacity, /*buffer_packets=*/4,
                  DropPolicy::kDropIncoming, nullptr,
                  [](Packet&&, SimTime, SimTime) {},
                  [&](const Packet&, SimTime) { ++handler_drops; });
  CountingProbe probe;
  lossy.set_probe(&probe);

  constexpr std::uint64_t kPackets = 30;
  for (std::uint64_t i = 0; i < kPackets; ++i) {
    // Burst of back-to-back arrivals: most of them overflow the buffer.
    sim.schedule_at(1.0, [&lossy, i] {
      lossy.arrive(make_packet(i, static_cast<ClassId>(i % 2)));
    });
  }
  sim.run();

  const std::uint64_t total_drops = lossy.drops(0) + lossy.drops(1);
  EXPECT_GT(total_drops, 0u);
  EXPECT_EQ(probe.drops, total_drops);
  EXPECT_EQ(probe.drops, handler_drops);
  // Lifecycle conservation: every offered packet is either admitted (and
  // then runs the full arrive/enqueue/dequeue/depart chain on the inner
  // link) or dropped at admission — never both, never neither.
  EXPECT_EQ(probe.arrives + probe.drops, kPackets);
  EXPECT_EQ(probe.enqueues, probe.arrives);
  EXPECT_EQ(probe.dequeues, probe.arrives);
  EXPECT_EQ(probe.departs, probe.arrives);
}

#endif  // PDS_OBS_ENABLED

// ---------------------------------------------------------------- profiler

TEST(SimProfiler, AttributesEventsToLabels) {
  Simulator sim;
  SimProfiler profiler;
  sim.set_monitor(&profiler);
  for (int i = 0; i < 5; ++i) {
    sim.schedule_at(static_cast<SimTime>(i), [] {}, "work");
  }
  sim.schedule_at(10.0, [] {});  // unlabeled
  sim.run();
  sim.set_monitor(nullptr);

  EXPECT_EQ(profiler.total_events(), 6u);
  const auto cats = profiler.categories();
  ASSERT_EQ(cats.size(), 2u);
  std::uint64_t work_events = 0;
  for (const auto& cat : cats) {
    if (cat.label == "work") work_events = cat.events;
  }
  EXPECT_EQ(work_events, 5u);
  EXPECT_EQ(profiler.queue_depth().count(), 6u);
}

}  // namespace
}  // namespace pds
