#include <gtest/gtest.h>

#include "packet/packet.hpp"
#include "packet/size_law.hpp"
#include "rng/rng.hpp"

namespace pds {
namespace {

TEST(SizeLaw, PaperMeanIs441Bytes) {
  EXPECT_NEAR(paper_size_law().mean(), kPaperMeanPacketBytes, 1e-9);
}

TEST(SizeLaw, StudyACapacityYieldsOnePUnitMeanTransmission) {
  // mean packet (441 B) / capacity == 11.2 time units, the paper's p-unit.
  EXPECT_NEAR(kPaperMeanPacketBytes / kStudyACapacity, kPUnit, 1e-12);
}

TEST(SizeLaw, SamplesOnlyPaperSizes) {
  const auto law = paper_size_law();
  Rng rng(1);
  for (int i = 0; i < 5000; ++i) {
    const auto s = sample_size_bytes(law, rng);
    EXPECT_TRUE(s == 40 || s == 550 || s == 1500) << s;
  }
}

TEST(SizeLaw, SampleProportionsMatchPaper) {
  const auto law = paper_size_law();
  Rng rng(2);
  int small = 0, mid = 0, large = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    switch (sample_size_bytes(law, rng)) {
      case 40: ++small; break;
      case 550: ++mid; break;
      default: ++large; break;
    }
  }
  EXPECT_NEAR(small / static_cast<double>(n), 0.40, 0.01);
  EXPECT_NEAR(mid / static_cast<double>(n), 0.50, 0.01);
  EXPECT_NEAR(large / static_cast<double>(n), 0.10, 0.01);
}

TEST(Packet, DefaultsAreInert) {
  const Packet p;
  EXPECT_EQ(p.flow, kNoFlow);
  EXPECT_EQ(p.hops_done, 0u);
  EXPECT_DOUBLE_EQ(p.cum_queueing, 0.0);
}

TEST(Packet, PaperClassLabelIsOneBased) {
  EXPECT_EQ(paper_class_label(0), 1);
  EXPECT_EQ(paper_class_label(3), 4);
}

}  // namespace
}  // namespace pds
