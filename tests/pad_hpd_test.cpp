#include <gtest/gtest.h>

#include "sched/pad.hpp"
#include "sched/wtp.hpp"
#include "test_helpers.hpp"

namespace pds {
namespace {

using testutil::packet;

SchedulerConfig config2(double g = 0.875) {
  SchedulerConfig c;
  c.sdp = {1.0, 2.0};
  c.hpd_g = g;
  return c;
}

TEST(Pad, NormalizedAverageIncludesProspectiveHead) {
  PadScheduler pad(config2());
  pad.enqueue(packet(1, 0, 100, 0.0), 0.0);
  // No history: the metric is the head's prospective delay * s.
  EXPECT_DOUBLE_EQ(pad.normalized_average_delay(0, 8.0), 8.0);
  EXPECT_DOUBLE_EQ(pad.normalized_average_delay(1, 8.0), 0.0);
}

TEST(Pad, ServesClassWithLargestNormalizedAverage) {
  PadScheduler pad(config2());
  pad.enqueue(packet(1, 0, 100, 0.0), 0.0);
  pad.enqueue(packet(2, 1, 100, 4.0), 4.0);
  // At t=10: class0 metric = 10*1 = 10; class1 metric = 6*2 = 12.
  EXPECT_EQ(pad.dequeue(10.0)->cls, 1u);
}

TEST(Pad, HistoryShiftsTheChoice) {
  PadScheduler pad(config2());
  // Build class-0 history: one packet served after waiting 20.
  pad.enqueue(packet(1, 0, 100, 0.0), 0.0);
  EXPECT_EQ(pad.dequeue(20.0)->cls, 0u);  // avg0 = 20
  // Now heads wait equally, but class 0's average keeps it ahead even
  // though class 1's SDP is twice as large:
  // class0: (20 + 2)/2 * 1 = 11;  class1: 2 * 2 = 4.
  pad.enqueue(packet(2, 0, 100, 20.0), 20.0);
  pad.enqueue(packet(3, 1, 100, 20.0), 20.0);
  EXPECT_EQ(pad.dequeue(22.0)->cls, 0u);
}

TEST(Pad, DequeueOnEmptyIsNullopt) {
  PadScheduler pad(config2());
  EXPECT_FALSE(pad.dequeue(0.0).has_value());
}

TEST(Hpd, GEqualToOneMatchesWtpChoice) {
  HpdScheduler hpd(config2(1.0));
  WtpScheduler wtp(config2());
  for (auto* s : std::vector<ClassBasedScheduler*>{&hpd, &wtp}) {
    s->enqueue(packet(1, 0, 100, 0.0), 0.0);
    s->enqueue(packet(2, 1, 100, 4.0), 4.0);
  }
  const auto a = hpd.dequeue(10.0);
  const auto b = wtp.dequeue(10.0);
  ASSERT_TRUE(a && b);
  EXPECT_EQ(a->cls, b->cls);
}

TEST(Hpd, GNearZeroMatchesPadChoice) {
  // g = 0 itself is rejected by validate(); a vanishing g makes the WTP
  // component negligible so the PAD term dictates the argmax.
  HpdScheduler hpd(config2(1e-9));
  PadScheduler pad(config2());
  // Give class 0 heavy history on both schedulers.
  for (auto* s : std::vector<PadScheduler*>{&hpd, &pad}) {
    s->enqueue(packet(1, 0, 100, 0.0), 0.0);
    ASSERT_EQ(s->dequeue(30.0)->cls, 0u);
    s->enqueue(packet(2, 0, 100, 30.0), 30.0);
    s->enqueue(packet(3, 1, 100, 30.0), 30.0);
  }
  const auto a = hpd.dequeue(31.0);
  const auto b = pad.dequeue(31.0);
  ASSERT_TRUE(a && b);
  EXPECT_EQ(a->cls, b->cls);
  EXPECT_EQ(a->cls, 0u);
}

TEST(Hpd, BlendsBothComponents) {
  // Construct a case where WTP picks class 1 (bigger s on equal waits) and
  // PAD picks class 0 (heavy history); g = 0.9 leans WTP, g = 0.1 leans PAD.
  const auto build = [](double g) {
    auto hpd = std::make_unique<HpdScheduler>(config2(g));
    hpd->enqueue(packet(1, 0, 100, 0.0), 0.0);
    EXPECT_EQ(hpd->dequeue(50.0)->cls, 0u);  // class-0 avg delay = 50
    hpd->enqueue(packet(2, 0, 100, 50.0), 50.0);
    hpd->enqueue(packet(3, 1, 100, 50.0), 50.0);
    return hpd;
  };
  // At t=52: waits are 2 for both heads.
  //   WTP part:  class0 = 2,  class1 = 4.
  //   PAD part:  class0 = (50+2)/2 = 26, class1 = 4.
  // g=0.99: class0 = 2.24 < class1 = 4.00  -> WTP-ish choice.
  // g=0.10: class0 = 23.6 > class1 = 4.00  -> PAD-ish choice.
  auto leans_wtp = build(0.99);
  EXPECT_EQ(leans_wtp->dequeue(52.0)->cls, 1u);
  auto leans_pad = build(0.1);
  EXPECT_EQ(leans_pad->dequeue(52.0)->cls, 0u);
}

}  // namespace
}  // namespace pds
