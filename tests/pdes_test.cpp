#include <gtest/gtest.h>

#include <algorithm>
#include <stdexcept>
#include <string>
#include <vector>

#include "dsim/shard.hpp"
#include "dsim/simulator.hpp"
#include "exp/thread_pool.hpp"
#include "net/partition.hpp"
#include "net/scenario.hpp"
#include "obs/metrics.hpp"
#include "obs/pdes_trace.hpp"
#include "obs/report.hpp"

namespace pds {
namespace {

// ------------------------------------------------- clock-splitting surface

TEST(SimulatorWindows, RunBeforeIsStrictAndAdvanceToMovesTheClock) {
  Simulator sim;
  std::vector<int> fired;
  sim.schedule_at(5.0, [&] { fired.push_back(5); });
  sim.schedule_at(10.0, [&] { fired.push_back(10); });
  sim.run_before(10.0);
  EXPECT_EQ(fired, (std::vector<int>{5}));  // strictly below the bound
  EXPECT_DOUBLE_EQ(sim.next_time(), 10.0);
  sim.advance_to(10.0);  // deliver-a-message point: clock moves, prefix ran
  EXPECT_DOUBLE_EQ(sim.now(), 10.0);
  sim.run_before(11.0);
  EXPECT_EQ(fired, (std::vector<int>{5, 10}));
  EXPECT_EQ(sim.executed_events(), 2u);
}

TEST(SimulatorWindows, NextTimeIsInfiniteWhenIdle) {
  Simulator sim;
  EXPECT_EQ(sim.next_time(), kSimTimeInfinity);
  sim.schedule_at(3.0, [] {});
  EXPECT_DOUBLE_EQ(sim.next_time(), 3.0);
}

// ---------------------------------------------------------- window fixpoint

TEST(SolveWindows, SourceShardRunsFreeAndDownstreamIsBounded) {
  // Shard 0 has no in-edges: S_0 = inf, E_0 = its own next event. Shard 1
  // receives from 0 with lookahead 5: it may run anything below E_0 + 5.
  std::vector<SimTime> la = make_lookahead(2);
  add_lookahead_edge(la, 2, 0, 1, 5.0);
  std::vector<SimTime> next{10.0, 12.0}, e, s;
  ShardEngine::solve_windows(next, la, e, s);
  EXPECT_EQ(s[0], kSimTimeInfinity);
  EXPECT_DOUBLE_EQ(e[0], 10.0);
  EXPECT_DOUBLE_EQ(s[1], 15.0);
  EXPECT_DOUBLE_EQ(e[1], 12.0);
}

TEST(SolveWindows, ZeroLookaheadEdgePinsTheDownstreamBound) {
  // The workload-injection edge: shard 0 can emit at its current time, so
  // shard 1 may never outrun shard 0's earliest pending work.
  std::vector<SimTime> la = make_lookahead(2);
  add_lookahead_edge(la, 2, 0, 1, 0.0);
  std::vector<SimTime> next{10.0, 50.0}, e, s;
  ShardEngine::solve_windows(next, la, e, s);
  EXPECT_DOUBLE_EQ(s[1], 10.0);
  EXPECT_DOUBLE_EQ(e[1], 10.0);  // min(own 50, inbound bound 10)
}

TEST(SolveWindows, FixpointPropagatesAroundAChain) {
  // 0 -> 1 -> 2 with lookahead 1 each; shard 0 idle until 100, the others
  // think they have work at 3. Their earliest *executable* work still sits
  // behind the chain: E_1 = 3 but nothing below min(E_0+1, ...) is safe.
  std::vector<SimTime> la = make_lookahead(3);
  add_lookahead_edge(la, 3, 0, 1, 1.0);
  add_lookahead_edge(la, 3, 1, 2, 1.0);
  std::vector<SimTime> next{100.0, 3.0, 3.0}, e, s;
  ShardEngine::solve_windows(next, la, e, s);
  EXPECT_DOUBLE_EQ(e[0], 100.0);
  EXPECT_DOUBLE_EQ(s[1], 101.0);
  EXPECT_DOUBLE_EQ(e[1], 3.0);
  EXPECT_DOUBLE_EQ(s[2], 4.0);  // bounded by shard 1's pending work + 1
  EXPECT_DOUBLE_EQ(e[2], 3.0);
}

TEST(SolveWindows, TighteningAnEdgeKeepsTheMinimum) {
  std::vector<SimTime> la = make_lookahead(2);
  add_lookahead_edge(la, 2, 0, 1, 7.0);
  add_lookahead_edge(la, 2, 0, 1, 3.0);  // tightens
  add_lookahead_edge(la, 2, 0, 1, 9.0);  // ignored: looser
  std::vector<SimTime> next{0.0, 100.0}, e, s;
  ShardEngine::solve_windows(next, la, e, s);
  EXPECT_DOUBLE_EQ(s[1], 3.0);
}

// ------------------------------------------------------------ channel merge

TEST(ShardChannel, SequencesFollowPublishOrderAcrossSplices) {
  ShardChannel<int> ch;
  ch.publish(2.0, 20);
  ch.publish(1.0, 10);  // later seq even though earlier timestamp
  std::vector<ShardMessage<int>> inbox;
  EXPECT_EQ(ch.splice_into(inbox), 2u);
  EXPECT_EQ(ch.pending(), 0u);
  ch.publish(3.0, 30);  // next batch continues the sequence
  EXPECT_EQ(ch.splice_into(inbox), 1u);
  ASSERT_EQ(inbox.size(), 3u);
  EXPECT_EQ(inbox[0].seq, 0u);
  EXPECT_EQ(inbox[1].seq, 1u);
  EXPECT_EQ(inbox[2].seq, 2u);
  EXPECT_EQ(inbox[1].payload, 10);
}

// A toy three-shard engine run: shards 1 and 2 publish to shard 0 at
// identical timestamps; shard 0 applies its inbox in (ts, src, seq) order —
// the same total order the scenario runner uses — so the application order
// must be deterministic regardless of which shard's window ran "first".
struct ToyMsg {
  std::uint32_t src;
  std::uint64_t seq;
};

TEST(ShardEngine, MergeAppliesEqualTimestampsBySourceThenSequence) {
  constexpr std::uint32_t kShards = 3;
  std::vector<ShardChannel<ToyMsg>> channels(kShards);  // src -> shard 0
  std::vector<ShardMessage<ToyMsg>> inbox;
  std::vector<ToyMsg> applied;
  // Shards 1 and 2 each publish two messages at t=5 during round one.
  bool published = false;

  std::vector<ShardEngine::Shard> shards(kShards);
  shards[0].next_time = [&] {
    return inbox.empty() ? kSimTimeInfinity : inbox.front().ts;
  };
  shards[0].run_window = [&](SimTime bound) -> std::uint64_t {
    std::uint64_t n = 0;
    while (!inbox.empty() && inbox.front().ts < bound) {
      applied.push_back(inbox.front().payload);
      inbox.erase(inbox.begin());
      ++n;
    }
    return n;
  };
  shards[0].finish = shards[0].run_window;
  for (std::uint32_t s = 1; s < kShards; ++s) {
    shards[s].next_time = [&published] {
      return published ? kSimTimeInfinity : 5.0;
    };
    shards[s].run_window = [&channels, &published, s](SimTime bound) {
      if (published || bound <= 5.0) return std::uint64_t{0};
      channels[s].publish(5.0, ToyMsg{s, 0});
      channels[s].publish(5.0, ToyMsg{s, 1});
      return std::uint64_t{1};
    };
    shards[s].finish = shards[s].run_window;
  }

  std::vector<SimTime> la = make_lookahead(kShards);
  add_lookahead_edge(la, kShards, 1, 0, 1.0);
  add_lookahead_edge(la, kShards, 2, 0, 1.0);
  ShardEngine engine(std::move(shards), la, /*horizon=*/20.0);
  engine.set_splice([&] {
    ShardEngine::SpliceResult r;
    for (auto& ch : channels) {
      const std::size_t before = inbox.size();
      std::vector<ShardMessage<ToyMsg>> batch;
      ch.splice_into(batch);
      for (auto& m : batch) inbox.push_back(m);
      r.moved += inbox.size() - before;
      r.max_batch = std::max<std::uint64_t>(r.max_batch, batch.size());
    }
    if (r.moved > 0) {
      published = true;
      std::sort(inbox.begin(), inbox.end(), [](const auto& a, const auto& b) {
        if (a.ts != b.ts) return a.ts < b.ts;
        if (a.payload.src != b.payload.src)
          return a.payload.src < b.payload.src;
        return a.seq < b.seq;
      });
    }
    return r;
  });

  const PdesStats stats = engine.run();
  ASSERT_EQ(applied.size(), 4u);
  EXPECT_EQ(applied[0].src, 1u);
  EXPECT_EQ(applied[0].seq, 0u);
  EXPECT_EQ(applied[1].src, 1u);
  EXPECT_EQ(applied[1].seq, 1u);
  EXPECT_EQ(applied[2].src, 2u);
  EXPECT_EQ(applied[3].src, 2u);
  EXPECT_EQ(stats.messages, 4u);
  EXPECT_EQ(stats.max_channel_depth, 2u);
  EXPECT_GE(stats.rounds, 2u);
}

TEST(ShardEngine, ZeroLookaheadCycleIsDetected) {
  // Two shards that each claim pending work at t=5 but can never run it
  // (their safe bound is pinned at 5 by the 0-lookahead cycle): the engine
  // must throw instead of spinning.
  std::vector<ShardEngine::Shard> shards(2);
  for (auto& sh : shards) {
    sh.next_time = [] { return 5.0; };
    sh.run_window = [](SimTime) { return std::uint64_t{0}; };
    sh.finish = [](SimTime) { return std::uint64_t{0}; };
  }
  std::vector<SimTime> la = make_lookahead(2);
  add_lookahead_edge(la, 2, 0, 1, 0.0);
  add_lookahead_edge(la, 2, 1, 0, 0.0);
  ShardEngine engine(std::move(shards), la, 10.0);
  engine.set_splice([] { return ShardEngine::SpliceResult{}; });
  EXPECT_THROW(engine.run(), std::logic_error);
}

// -------------------------------------------------------------- partitioning

std::vector<GraphEdge> ring_edges(std::uint32_t n) {
  // Two directed links per undirected edge, ids in declaration order.
  std::vector<GraphEdge> edges;
  for (std::uint32_t i = 0; i < n; ++i) {
    const std::uint32_t j = (i + 1) % n;
    edges.push_back(GraphEdge{2 * i, i, j});
    edges.push_back(GraphEdge{2 * i + 1, j, i});
  }
  return edges;
}

TEST(PartitionTopology, RoundRobinAssignsByNodeIdModulo) {
  const auto edges = ring_edges(6);
  const std::vector<double> cap(12, 39.375);
  const auto part =
      partition_topology(6, 12, edges, cap, 3, PartitionMethod::kRoundRobin);
  ASSERT_EQ(part.node_shard.size(), 6u);
  for (std::uint32_t i = 0; i < 6; ++i) EXPECT_EQ(part.node_shard[i], i % 3);
  // A directed link belongs to its upstream node's shard.
  for (const auto& e : edges) {
    EXPECT_EQ(part.link_owner[e.link], part.node_shard[e.from]);
  }
}

TEST(PartitionTopology, GreedyIsBalancedAndDeterministic) {
  const auto edges = ring_edges(8);
  const std::vector<double> cap(16, 39.375);
  const auto a =
      partition_topology(8, 16, edges, cap, 4, PartitionMethod::kGreedy);
  const auto b =
      partition_topology(8, 16, edges, cap, 4, PartitionMethod::kGreedy);
  EXPECT_EQ(a.node_shard, b.node_shard);  // pure function of the graph
  EXPECT_EQ(a.link_owner, b.link_owner);
  std::vector<std::uint32_t> sizes(4, 0);
  for (const auto s : a.node_shard) {
    ASSERT_LT(s, 4u);
    ++sizes[s];
  }
  for (const auto n : sizes) EXPECT_EQ(n, 2u);  // ceil(8 / 4) everywhere
}

TEST(PartitionTopology, UnboundLinksBelongToShardZero) {
  // Links that appear in no graph edge (bare `link` directives) carry the
  // non-graph state and must stay with shard 0.
  const auto edges = ring_edges(4);
  std::vector<double> cap(10, 39.375);  // links 8 and 9 are unbound
  const auto part =
      partition_topology(4, 10, edges, cap, 2, PartitionMethod::kGreedy);
  EXPECT_EQ(part.link_owner[8], 0u);
  EXPECT_EQ(part.link_owner[9], 0u);
}

TEST(PartitionTopology, MoreShardsThanNodesLeavesShardsEmpty) {
  const auto edges = ring_edges(3);
  const std::vector<double> cap(6, 10.0);
  const auto part =
      partition_topology(3, 6, edges, cap, 8, PartitionMethod::kGreedy);
  for (const auto s : part.node_shard) EXPECT_LT(s, 8u);
}

TEST(AddRouteLookahead, CutEdgesCarryTheTransmissionFloor) {
  // Nodes 0,1 on shard 0 and 2,3 on shard 1; a route 0->1->2->3 crosses the
  // cut on its middle hop. min packet 100 B over 50 B/tu -> 2 tu lookahead.
  Partition part;
  part.shards = 2;
  part.node_shard = {0, 0, 1, 1};
  part.link_owner = {0, 0, 1};
  const std::vector<std::vector<LinkId>> paths{{0, 1, 2}};
  const std::vector<std::uint32_t> exit_shard{1};  // exit on the last owner
  const std::vector<double> cap{50.0, 50.0, 50.0};
  auto la = make_lookahead(2);
  add_route_lookahead(la, part, paths, exit_shard, cap, 100.0);
  EXPECT_DOUBLE_EQ(la[0 * 2 + 1], 2.0);       // hop 1 -> hop 2 crosses 0->1
  EXPECT_EQ(la[1 * 2 + 0], kSimTimeInfinity);  // nothing flows back
}

// ------------------------------------------------------------- obs: trace

TEST(PdesTraceTest, RecordsOneSpanPerBusyShardRound) {
  PdesTrace trace(2);
  trace.record_round(0, {10.0, 12.0}, {4, 0}, {1, 0});
  trace.record_round(1, {20.0, 20.0}, {3, 2}, {0, 2});
  EXPECT_EQ(trace.rounds_recorded(), 2u);
  EXPECT_EQ(trace.shard_buffer(0).size(), 2u);  // busy in both rounds
  EXPECT_EQ(trace.shard_buffer(1).size(), 1u);  // idle in round 0
  const auto merged = trace.merged();
  ASSERT_EQ(merged.size(), 3u);
  // Content order: shard (tid) ascending, then window start.
  EXPECT_EQ(merged[0].tid, 0u);
  EXPECT_DOUBLE_EQ(merged[0].ts, 0.0);
  EXPECT_DOUBLE_EQ(merged[0].dur, 10.0);
  EXPECT_EQ(merged[1].tid, 0u);
  EXPECT_DOUBLE_EQ(merged[1].ts, 10.0);
  EXPECT_EQ(merged[2].tid, 1u);
  EXPECT_EQ(merged[2].name, "pdes.window");
}

TEST(PdesTraceTest, StatsLandInTheMetricsRegistry) {
  PdesTrace trace(1);
  MetricsRegistry registry;
  PdesStats stats;
  stats.rounds = 7;
  stats.messages = 42;
  trace.record_stats(stats, registry);
  const auto& counters = registry.counters();
  ASSERT_TRUE(counters.count("pdes.rounds"));
  EXPECT_EQ(counters.at("pdes.rounds").total(), 7u);
  ASSERT_TRUE(counters.count("pdes.messages"));
  EXPECT_EQ(counters.at("pdes.messages").total(), 42u);
}

// ------------------------------------------- scenario-level byte identity

const char* kRing = R"(
topology ring n=6 capacity=39.375 sched=wtp sdp=1,2,4,8
route east from=n0 to=n2
route west from=n2 to=n0
route cross from=n0 to=n3
source mix east fractions=40,30,20,10 gap=20 size=441 pareto=1.9
source mix west fractions=40,30,20,10 gap=20 size=441 pareto=1.9
flows cross class=3 users=8 size=441 think=1200 request=2 response=2 deadline=400
flows cross class=0 users=8 size=441 think=1200 request=2 response=2 deadline=400
run until=30000 warmup=3000 seed=7
)";

const char* kFatTree = R"(
topology fat_tree k=4 capacity=39.375 sched=wtp sdp=1,2,4
route rpc01 from=p0edge0 to=p1edge0
route rpc23 from=p2edge0 to=p3edge1
flows rpc01 class=2 users=12 size=441 think=1500 request=2 response=2 deadline=450 rto=900 retries=2 backoff=2
flows rpc23 class=1 users=12 size=441 think=1500 request=2 response=2 deadline=140
route bg from=p0edge1 to=p1edge1
source mix bg fractions=60,30,10 gap=30 size=441 pareto=1.9
run until=30000 warmup=3000 seed=21
)";

std::string render(const Scenario& scenario, const ScenarioOptions& options) {
  const auto report = run_scenario(scenario, options);
  return scenario_run_report(scenario, report, options.seed.value_or(1)).dump();
}

TEST(ShardedScenario, RingIsByteIdenticalAcrossShardCounts) {
  const auto scenario = parse_scenario(kRing);
  ScenarioOptions options;
  const std::string serial = render(scenario, options);
  for (const std::uint32_t shards : {2u, 3u}) {
    ScenarioOptions opt;
    opt.shards = shards;
    EXPECT_EQ(render(scenario, opt), serial) << "shards=" << shards;
  }
}

TEST(ShardedScenario, FatTreeIsByteIdenticalAcrossShardCounts) {
  const auto scenario = parse_scenario(kFatTree);
  ScenarioOptions options;
  const std::string serial = render(scenario, options);
  for (const std::uint32_t shards : {2u, 4u}) {
    ScenarioOptions opt;
    opt.shards = shards;
    EXPECT_EQ(render(scenario, opt), serial) << "shards=" << shards;
  }
}

TEST(ShardedScenario, FaultAndControlPlansStayByteIdentical) {
  const auto scenario = parse_scenario(kRing);
  ScenarioOptions options;
  options.fault_plan = "down n1>n2 at=8000 for=2000 mode=drop\n";
  options.control_plan =
      "retune n0>n1 at=6000 w=1,2,3,4\n"
      "swap n1>n2 at=12000 sched=hpd\n"
      "shed n1>n0 at=15000 for=3000 watermark=2 classes=2\n";
  const std::string serial = render(scenario, options);
  ScenarioOptions sharded = options;
  sharded.shards = 3;
  EXPECT_EQ(render(scenario, sharded), serial);
}

TEST(ShardedScenario, RoundRobinPartitionIsAlsoByteIdentical) {
  const auto scenario = parse_scenario(kRing);
  const std::string serial = render(scenario, ScenarioOptions{});
  ScenarioOptions rr;
  rr.shards = 3;
  rr.partition = PartitionMethod::kRoundRobin;
  EXPECT_EQ(render(scenario, rr), serial);
}

TEST(ShardedScenario, ProtocolCountersSeeRealCrossShardTraffic) {
  const auto scenario = parse_scenario(kRing);
  ScenarioOptions options;
  options.shards = 3;
  PdesStats stats;
  options.pdes_stats = &stats;
  run_scenario(scenario, options);
  EXPECT_GT(stats.rounds, 0u);
  EXPECT_GT(stats.messages, 0u);  // the cut carries traffic, not a no-op
  EXPECT_GT(stats.max_channel_depth, 0u);
}

TEST(ShardedScenario, TraceRecordsEveryRound) {
  const auto scenario = parse_scenario(kRing);
  ScenarioOptions options;
  options.shards = 2;
  PdesStats stats;
  PdesTrace trace(2);
  options.pdes_stats = &stats;
  options.pdes_trace = &trace;
  run_scenario(scenario, options);
  EXPECT_EQ(trace.rounds_recorded(), stats.rounds);
  EXPECT_FALSE(trace.merged().empty());
}

TEST(ShardedScenario, RejectsMetricsAndBudgetsWithShards) {
  const auto scenario = parse_scenario(kRing);
  ScenarioOptions options;
  options.shards = 2;
  options.metrics_out = "/tmp/should_not_exist.csv";
  EXPECT_THROW(run_scenario(scenario, options), std::invalid_argument);
  ScenarioOptions budget;
  budget.shards = 2;
  budget.max_events = 1000;
  EXPECT_THROW(run_scenario(scenario, budget), std::invalid_argument);
}

TEST(ShardedScenario, ParallelExecutorMatchesTheSerialLoop) {
  // The byte-identity tests above run shard windows on the default serial
  // loop; this one injects the real pool so the TSan pass exercises the
  // barrier/channel handoffs under actual threads.
  const auto scenario = parse_scenario(kRing);
  const std::string serial = render(scenario, ScenarioOptions{});
  ThreadPool::set_global_workers(4);
  ScenarioOptions opt;
  opt.shards = 3;
  opt.shard_executor = [](std::size_t count,
                          const std::function<void(std::size_t)>& body) {
    parallel_for(count, body);
  };
  const std::string parallel = render(scenario, opt);
  ThreadPool::set_global_workers(0);  // restore auto for other suites
  EXPECT_EQ(parallel, serial);
}

TEST(ShardedScenario, ShardCountBeyondNodesStillMatchesSerial) {
  const auto scenario = parse_scenario(kRing);
  const std::string serial = render(scenario, ScenarioOptions{});
  ScenarioOptions opt;
  opt.shards = 12;  // ring has 6 nodes: half the shards stay empty
  EXPECT_EQ(render(scenario, opt), serial);
}

}  // namespace
}  // namespace pds
