#include <gtest/gtest.h>

#include "core/feasibility.hpp"
#include "core/provisioning.hpp"
#include "core/study_a.hpp"

namespace pds {
namespace {

std::vector<ArrivalRecord> heavy_trace() {
  StudyAConfig config;
  config.scheduler = SchedulerKind::kFcfs;
  config.utilization = 0.95;
  config.sim_time = 2.0e5;
  config.record_trace = true;
  config.seed = 202;
  return run_study_a(config).trace;
}

constexpr double kWarmup = 2.0e4;

TEST(GeometricDdp, BuildsTheLadder) {
  const auto ddp = geometric_ddp(2.0, 4);
  ASSERT_EQ(ddp.size(), 4u);
  EXPECT_DOUBLE_EQ(ddp[0], 1.0);
  EXPECT_DOUBLE_EQ(ddp[1], 0.5);
  EXPECT_DOUBLE_EQ(ddp[3], 0.125);
  EXPECT_THROW(geometric_ddp(0.5, 4), std::invalid_argument);
}

TEST(MaxFeasibleSpacing, FindsTheBoundary) {
  const auto trace = heavy_trace();
  const auto result =
      max_feasible_spacing(trace, 4, kStudyACapacity, kWarmup);
  ASSERT_TRUE(result.bounded);
  // The paper's spacing 2 is feasible at this load; the boundary must lie
  // beyond it and below the absurd end of the scale.
  EXPECT_GT(result.spacing, 2.0);
  EXPECT_LT(result.spacing, 64.0);
  // Just inside is feasible, just outside is not.
  EXPECT_TRUE(check_feasibility(trace,
                                geometric_ddp(result.spacing * 0.98, 4),
                                kStudyACapacity, kWarmup)
                  .feasible);
  EXPECT_FALSE(check_feasibility(trace,
                                 geometric_ddp(result.spacing * 1.05, 4),
                                 kStudyACapacity, kWarmup)
                   .feasible);
  ASSERT_EQ(result.target_delays.size(), 4u);
}

TEST(MaxFeasibleSpacing, MergingClassesWidensTheBoundary) {
  // A two-rung ladder strains the FCFS floors less than a four-rung one
  // on the same traffic: merge classes {0,1} -> 0 and {2,3} -> 1 and the
  // feasible spacing must not shrink.
  auto trace = heavy_trace();
  const auto four = max_feasible_spacing(trace, 4, kStudyACapacity, kWarmup);
  for (auto& rec : trace) rec.cls = rec.cls / 2;
  const auto two = max_feasible_spacing(trace, 2, kStudyACapacity, kWarmup);
  EXPECT_GE(two.spacing + 0.05, four.spacing);
}

TEST(SpacingForTargetDelay, LooseTargetNeedsNoSpacing) {
  const auto trace = heavy_trace();
  // Target above the aggregate FCFS delay: spacing 1 suffices.
  const auto result = spacing_for_target_delay(trace, 4, kStudyACapacity,
                                               1.0e5, kWarmup);
  ASSERT_TRUE(result.has_value());
  EXPECT_DOUBLE_EQ(result->spacing, 1.0);
  EXPECT_TRUE(result->feasible);
}

TEST(SpacingForTargetDelay, TightTargetNeedsSpacing) {
  const auto trace = heavy_trace();
  // Ask for the top class at a quarter of the aggregate delay.
  std::vector<bool> all(4, true);
  const double d_agg =
      fcfs_average_delay(trace, all, kStudyACapacity, kWarmup);
  const auto result = spacing_for_target_delay(trace, 4, kStudyACapacity,
                                               0.25 * d_agg, kWarmup);
  ASSERT_TRUE(result.has_value());
  EXPECT_GT(result->spacing, 1.3);
  // The prediction at the found spacing honours the target.
  EXPECT_LE(result->target_delays.back(), 0.25 * d_agg * 1.02);
}

TEST(SpacingForTargetDelay, ImpossibleTargetReturnsNullopt) {
  const auto trace = heavy_trace();
  const auto result = spacing_for_target_delay(trace, 4, kStudyACapacity,
                                               1e-7, kWarmup);
  EXPECT_FALSE(result.has_value());
}

TEST(SpacingForTargetDelay, AggressiveTargetMayBeInfeasible) {
  // A target achievable on paper (Eq. 6) can still fail Eq. 7 — exactly
  // the gap the operator needs to see. Construct it by asking for a top
  // delay near the solo-FCFS floor.
  const auto trace = heavy_trace();
  const auto bound = max_feasible_spacing(trace, 4, kStudyACapacity,
                                          kWarmup);
  // A target just below what the boundary spacing delivers requires a
  // wider-than-feasible ladder.
  const double target = bound.target_delays.back() * 0.7;
  const auto result = spacing_for_target_delay(trace, 4, kStudyACapacity,
                                               target, kWarmup);
  ASSERT_TRUE(result.has_value());
  EXPECT_GT(result->spacing, bound.spacing);
  EXPECT_FALSE(result->feasible);
}

}  // namespace
}  // namespace pds
