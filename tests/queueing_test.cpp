#include <gtest/gtest.h>

#include <deque>
#include <random>

#include "queueing/backlog.hpp"
#include "queueing/class_queue.hpp"

namespace pds {
namespace {

Packet make_packet(std::uint64_t id, ClassId cls, std::uint32_t bytes) {
  Packet p;
  p.id = id;
  p.cls = cls;
  p.size_bytes = bytes;
  return p;
}

TEST(ClassQueue, FifoOrder) {
  ClassQueue q;
  q.push(make_packet(1, 0, 100));
  q.push(make_packet(2, 0, 200));
  q.push(make_packet(3, 0, 300));
  EXPECT_EQ(q.pop().id, 1u);
  EXPECT_EQ(q.pop().id, 2u);
  EXPECT_EQ(q.pop().id, 3u);
}

TEST(ClassQueue, TracksBytesAndPackets) {
  ClassQueue q;
  EXPECT_TRUE(q.empty());
  q.push(make_packet(1, 0, 100));
  q.push(make_packet(2, 0, 250));
  EXPECT_EQ(q.packets(), 2u);
  EXPECT_EQ(q.bytes(), 350u);
  q.pop();
  EXPECT_EQ(q.bytes(), 250u);
  q.pop();
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.bytes(), 0u);
}

TEST(ClassQueue, PopTailRemovesNewest) {
  ClassQueue q;
  q.push(make_packet(1, 0, 100));
  q.push(make_packet(2, 0, 200));
  EXPECT_EQ(q.pop_tail().id, 2u);
  EXPECT_EQ(q.bytes(), 100u);
  EXPECT_EQ(q.head().id, 1u);
}

TEST(ClassQueue, CountsTotalArrivals) {
  ClassQueue q;
  q.push(make_packet(1, 0, 10));
  q.pop();
  q.push(make_packet(2, 0, 10));
  EXPECT_EQ(q.total_arrived(), 2u);
}

TEST(ClassQueue, EmptyAccessViolatesInvariant) {
  ClassQueue q;
  EXPECT_THROW(q.pop(), std::logic_error);
  EXPECT_THROW(q.pop_tail(), std::logic_error);
  EXPECT_THROW(q.head(), std::logic_error);
}

TEST(MultiClassBacklog, RoutesByClass) {
  MultiClassBacklog b(3);
  b.push(make_packet(1, 2, 100));
  b.push(make_packet(2, 0, 50));
  EXPECT_EQ(b.queue(2).packets(), 1u);
  EXPECT_EQ(b.queue(0).packets(), 1u);
  EXPECT_EQ(b.queue(1).packets(), 0u);
  EXPECT_EQ(b.pop(2).id, 1u);
}

TEST(MultiClassBacklog, AggregateAccounting) {
  MultiClassBacklog b(2);
  EXPECT_TRUE(b.empty());
  b.push(make_packet(1, 0, 100));
  b.push(make_packet(2, 1, 200));
  EXPECT_EQ(b.total_packets(), 2u);
  EXPECT_EQ(b.total_bytes(), 300u);
  b.pop(1);
  EXPECT_EQ(b.total_bytes(), 100u);
  b.pop_tail(0);
  EXPECT_TRUE(b.empty());
  EXPECT_EQ(b.total_bytes(), 0u);
}

TEST(MultiClassBacklog, BackloggedListsNonEmptyClassesAscending) {
  MultiClassBacklog b(4);
  b.push(make_packet(1, 3, 10));
  b.push(make_packet(2, 1, 10));
  const auto active = b.backlogged();
  ASSERT_EQ(active.size(), 2u);
  EXPECT_EQ(active[0], 1u);
  EXPECT_EQ(active[1], 3u);
}

TEST(MultiClassBacklog, RejectsOutOfRangeClass) {
  MultiClassBacklog b(2);
  EXPECT_THROW(b.push(make_packet(1, 5, 10)), std::invalid_argument);
  EXPECT_THROW(b.pop(2), std::invalid_argument);
  EXPECT_THROW(b.queue(2), std::invalid_argument);
}

TEST(MultiClassBacklog, RejectsZeroClasses) {
  EXPECT_THROW(MultiClassBacklog(0), std::invalid_argument);
}

// Differential test for the ring-buffer ClassQueue against std::deque, the
// container it replaced: a randomized mix of push / pop / pop_tail with
// phases that force both index wraparound (fill-drain cycles around the
// ring) and capacity growth mid-stream. Any divergence in order, head
// identity, or byte/packet accounting is a ring-index bug.
TEST(ClassQueue, MatchesDequeUnderRandomizedChurn) {
  std::mt19937 rng(20260806);
  ClassQueue q;
  std::deque<Packet> ref;
  std::uint64_t next_id = 1;
  std::uint64_t ref_bytes = 0;

  const auto push_one = [&] {
    const auto bytes = static_cast<std::uint32_t>(rng() % 1500 + 1);
    q.push(make_packet(next_id, 0, bytes));
    ref.push_back(make_packet(next_id, 0, bytes));
    ++next_id;
    ref_bytes += bytes;
  };

  for (int round = 0; round < 50; ++round) {
    // Growth phase: push far past the current capacity so the ring
    // reallocates while holding live packets at arbitrary offsets.
    const int burst = static_cast<int>(rng() % 40 + 10);
    for (int i = 0; i < burst; ++i) push_one();

    // Churn phase: interleave all three operations; drain low enough that
    // head/tail wrap the mask repeatedly across rounds.
    const int churn = static_cast<int>(rng() % 80 + 40);
    for (int i = 0; i < churn; ++i) {
      const auto op = rng() % 4;
      if (op == 0 || ref.empty()) {
        push_one();
      } else if (op == 1) {
        ASSERT_EQ(q.head().id, ref.front().id);
        const Packet got = q.pop();
        const Packet want = ref.front();
        ref.pop_front();
        ASSERT_EQ(got.id, want.id);
        ASSERT_EQ(got.size_bytes, want.size_bytes);
        ref_bytes -= want.size_bytes;
      } else if (op == 2) {
        const Packet got = q.pop_tail();
        const Packet want = ref.back();
        ref.pop_back();
        ASSERT_EQ(got.id, want.id);
        ASSERT_EQ(got.size_bytes, want.size_bytes);
        ref_bytes -= want.size_bytes;
      } else {
        ASSERT_EQ(q.packets(), ref.size());
        ASSERT_EQ(q.bytes(), ref_bytes);
      }
    }
  }

  // Full drain: every surviving packet must come out in deque order.
  while (!ref.empty()) {
    ASSERT_EQ(q.pop().id, ref.front().id);
    ref.pop_front();
  }
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.bytes(), 0u);
}

}  // namespace
}  // namespace pds
