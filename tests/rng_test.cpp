#include <gtest/gtest.h>

#include <cmath>

#include "rng/distributions.hpp"
#include "rng/rng.hpp"

namespace pds {
namespace {

constexpr int kSamples = 200000;

TEST(Rng, DeterministicForSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next() == b.next()) ++equal;
  }
  EXPECT_EQ(equal, 0);
}

TEST(Rng, Uniform01InHalfOpenUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform01();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, Uniform01MeanNearHalf) {
  Rng rng(11);
  double sum = 0.0;
  for (int i = 0; i < kSamples; ++i) sum += rng.uniform01();
  EXPECT_NEAR(sum / kSamples, 0.5, 0.01);
}

TEST(Rng, UniformRespectsBounds) {
  Rng rng(3);
  for (int i = 0; i < 10000; ++i) {
    const double x = rng.uniform(-2.0, 5.0);
    EXPECT_GE(x, -2.0);
    EXPECT_LT(x, 5.0);
  }
  EXPECT_THROW(rng.uniform(1.0, 1.0), std::invalid_argument);
}

TEST(Rng, UniformIndexCoversRangeWithoutBias) {
  Rng rng(5);
  std::vector<int> hits(7, 0);
  for (int i = 0; i < 70000; ++i) ++hits[rng.uniform_index(7)];
  for (const int h : hits) EXPECT_NEAR(h, 10000, 600);
  EXPECT_THROW(rng.uniform_index(0), std::invalid_argument);
}

TEST(Rng, SplitProducesIndependentStream) {
  Rng a(9);
  Rng b = a.split();
  // The child stream must not replay the parent's output.
  Rng a2(9);
  a2.split();
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next() == b.next()) ++equal;
  }
  EXPECT_EQ(equal, 0);
}

TEST(Rng, SplitIsDeterministic) {
  Rng a(9), b(9);
  Rng ca = a.split(), cb = b.split();
  for (int i = 0; i < 50; ++i) EXPECT_EQ(ca.next(), cb.next());
}

// --------------------------------------------------------------- Pareto

TEST(Pareto, SamplesRespectScaleMinimum) {
  const ParetoDist d(1.9, 3.0);
  Rng rng(13);
  for (int i = 0; i < 10000; ++i) EXPECT_GE(d.sample(rng), 3.0);
}

TEST(Pareto, WithMeanHitsRequestedMeanFormula) {
  const auto d = ParetoDist::with_mean(1.9, 10.0);
  EXPECT_NEAR(d.mean(), 10.0, 1e-12);
  EXPECT_NEAR(d.xm(), 10.0 * 0.9 / 1.9, 1e-12);
}

TEST(Pareto, TailProbabilityMatchesCdf) {
  // P[X > 2*xm] = 2^-alpha. Tail counts concentrate well even though the
  // variance is infinite.
  const double alpha = 1.9;
  const ParetoDist d(alpha, 1.0);
  Rng rng(17);
  int above = 0;
  for (int i = 0; i < kSamples; ++i) {
    if (d.sample(rng) > 2.0) ++above;
  }
  const double expected = std::pow(2.0, -alpha);
  EXPECT_NEAR(static_cast<double>(above) / kSamples, expected, 0.005);
}

TEST(Pareto, EmpiricalMeanApproachesTheory) {
  // alpha = 3 has finite variance, so the sample mean converges normally.
  const auto d = ParetoDist::with_mean(3.0, 5.0);
  Rng rng(19);
  double sum = 0.0;
  for (int i = 0; i < kSamples; ++i) sum += d.sample(rng);
  EXPECT_NEAR(sum / kSamples, 5.0, 0.1);
}

TEST(Pareto, RejectsBadParameters) {
  EXPECT_THROW(ParetoDist(0.0, 1.0), std::invalid_argument);
  EXPECT_THROW(ParetoDist(1.9, 0.0), std::invalid_argument);
  EXPECT_THROW(ParetoDist::with_mean(1.0, 5.0), std::invalid_argument);
  EXPECT_THROW(ParetoDist(0.9, 1.0).mean(), std::invalid_argument);
}

// ------------------------------------------------------- BoundedPareto

TEST(BoundedPareto, SamplesStayWithinBounds) {
  const BoundedParetoDist d(1.9, 1.0, 100.0);
  Rng rng(23);
  for (int i = 0; i < 10000; ++i) {
    const double x = d.sample(rng);
    EXPECT_GE(x, 1.0);
    EXPECT_LE(x, 100.0);
  }
}

TEST(BoundedPareto, EmpiricalMeanMatchesClosedForm) {
  const BoundedParetoDist d(1.9, 1.0, 100.0);
  Rng rng(29);
  double sum = 0.0;
  for (int i = 0; i < kSamples; ++i) sum += d.sample(rng);
  EXPECT_NEAR(sum / kSamples, d.mean(), 0.05 * d.mean());
}

TEST(BoundedPareto, RejectsBadBounds) {
  EXPECT_THROW(BoundedParetoDist(1.9, 2.0, 1.0), std::invalid_argument);
  EXPECT_THROW(BoundedParetoDist(1.9, 0.0, 1.0), std::invalid_argument);
}

// --------------------------------------------------------- Exponential

TEST(Exponential, EmpiricalMeanMatches) {
  const ExponentialDist d(4.0);
  Rng rng(31);
  double sum = 0.0;
  for (int i = 0; i < kSamples; ++i) sum += d.sample(rng);
  EXPECT_NEAR(sum / kSamples, 4.0, 0.08);
}

TEST(Exponential, MemorylessTail) {
  // P[X > mean] = 1/e.
  const ExponentialDist d(1.0);
  Rng rng(37);
  int above = 0;
  for (int i = 0; i < kSamples; ++i) {
    if (d.sample(rng) > 1.0) ++above;
  }
  EXPECT_NEAR(static_cast<double>(above) / kSamples, std::exp(-1.0), 0.01);
}

TEST(Exponential, RejectsNonPositiveMean) {
  EXPECT_THROW(ExponentialDist(0.0), std::invalid_argument);
}

// ------------------------------------------------------- Deterministic

TEST(Deterministic, AlwaysReturnsValue) {
  const DeterministicDist d(2.5);
  Rng rng(41);
  for (int i = 0; i < 10; ++i) EXPECT_DOUBLE_EQ(d.sample(rng), 2.5);
  EXPECT_DOUBLE_EQ(d.mean(), 2.5);
}

// ------------------------------------------------------------ Discrete

TEST(Discrete, NormalizesWeightsAndComputesMean) {
  const DiscreteDist d({{40.0, 4.0}, {550.0, 5.0}, {1500.0, 1.0}});
  EXPECT_NEAR(d.mean(), 441.0, 1e-9);
}

TEST(Discrete, EmpiricalProportionsMatchWeights) {
  const DiscreteDist d({{1.0, 0.4}, {2.0, 0.5}, {3.0, 0.1}});
  Rng rng(43);
  int c1 = 0, c2 = 0, c3 = 0;
  for (int i = 0; i < kSamples; ++i) {
    const double v = d.sample(rng);
    if (v == 1.0) ++c1;
    else if (v == 2.0) ++c2;
    else ++c3;
  }
  EXPECT_NEAR(c1 / static_cast<double>(kSamples), 0.4, 0.01);
  EXPECT_NEAR(c2 / static_cast<double>(kSamples), 0.5, 0.01);
  EXPECT_NEAR(c3 / static_cast<double>(kSamples), 0.1, 0.01);
}

TEST(Discrete, SingleOutcomeAlwaysSampled) {
  const DiscreteDist d({{7.0, 1.0}});
  Rng rng(47);
  for (int i = 0; i < 10; ++i) EXPECT_DOUBLE_EQ(d.sample(rng), 7.0);
}

TEST(Discrete, RejectsBadWeights) {
  EXPECT_THROW(DiscreteDist({}), std::invalid_argument);
  EXPECT_THROW(DiscreteDist({{1.0, 0.0}}), std::invalid_argument);
  EXPECT_THROW(DiscreteDist({{1.0, -1.0}}), std::invalid_argument);
}

}  // namespace
}  // namespace pds
