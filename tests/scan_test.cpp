// Differential tests for the vectorized priority-scan kernels: the scalar
// and SIMD backends must produce bit-identical decisions — same winning
// class under the paper's tie-break (highest class index wins), and for BPR
// the same post-update virtual-service state — for every input, including
// all-empty backlogs, a single backlogged class, and exact priority ties.
#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "rng/rng.hpp"
#include "sched/factory.hpp"
#include "sched/scan.hpp"
#include "sched/scheduler.hpp"
#include "test_helpers.hpp"

namespace pds {
namespace {

using scan::Backend;

// Fuzzed SoA head state with at least one backlogged class. Arrivals never
// exceed `now` (the kernels require non-negative waits) and sizes are drawn
// from a tiny set so equal head bytes — and therefore BPR ties — are common.
struct FuzzState {
  std::vector<double> arrival;
  std::vector<double> head_bytes;
  std::vector<std::uint64_t> mask;
  std::vector<double> sdp;
  std::vector<double> cum;
  std::vector<double> served;
  std::uint32_t n = 0;

  scan::Heads heads() const {
    return scan::Heads{arrival.data(), head_bytes.data(), mask.data(), n,
                       scan::padded_lanes(n)};
  }
};

FuzzState fuzz_state(Rng& rng, double now, std::uint32_t n) {
  FuzzState st;
  st.n = n;
  const std::uint32_t lanes = scan::padded_lanes(n);
  st.arrival.assign(lanes, 0.0);
  st.head_bytes.assign(lanes, 0.0);
  st.mask.assign(lanes, 0);
  st.sdp.assign(lanes, 0.0);
  st.cum.assign(lanes, 0.0);
  st.served.assign(lanes, 0.0);
  bool any = false;
  for (std::uint32_t c = 0; c < n; ++c) {
    // Quantized SDPs and a tiny size/arrival alphabet provoke exact ties.
    st.sdp[c] = 1.0 + static_cast<double>(c) *
                          (rng.uniform01() < 0.5 ? 0.0 : 1.0);
    if (rng.uniform01() < 0.7) {
      st.mask[c] = ~std::uint64_t{0};
      st.arrival[c] = now * static_cast<double>(rng.uniform_index(5)) / 8.0;
      st.head_bytes[c] =
          static_cast<double>(64 * (1 + rng.uniform_index(3)));
      any = true;
    }
    st.cum[c] = static_cast<double>(rng.uniform_index(4)) * 100.0;
    st.served[c] = static_cast<double>(rng.uniform_index(4));
  }
  if (!any) {
    const auto c = static_cast<std::uint32_t>(rng.uniform_index(n));
    st.mask[c] = ~std::uint64_t{0};
    st.arrival[c] = now / 2.0;
    st.head_bytes[c] = 128.0;
  }
  return st;
}

TEST(ScanKernels, BackendNamesAreReported) {
  EXPECT_STREQ(scan::backend_name(Backend::kScalar), "scalar");
  const char* simd = scan::backend_name(Backend::kSimd);
  if (scan::simd_available()) {
    EXPECT_TRUE(std::string(simd) == "sse2" || std::string(simd) == "avx2");
  } else {
    EXPECT_STREQ(simd, "scalar");
  }
}

TEST(ScanKernels, FuzzedWtpAdditivePadHpdAgree) {
  Rng rng(0xc0ffee);
  for (int iter = 0; iter < 5000; ++iter) {
    const double now = 100.0 + static_cast<double>(rng.uniform_index(900));
    const auto n = static_cast<std::uint32_t>(1 + rng.uniform_index(9));
    const FuzzState st = fuzz_state(rng, now, n);
    const auto h = st.heads();
    const double g = 0.125 * static_cast<double>(1 + rng.uniform_index(8));

    EXPECT_EQ(scan::wtp_select(h, st.sdp.data(), now, Backend::kScalar),
              scan::wtp_select(h, st.sdp.data(), now, Backend::kSimd))
        << "wtp iter " << iter;
    EXPECT_EQ(scan::additive_select(h, st.sdp.data(), now, Backend::kScalar),
              scan::additive_select(h, st.sdp.data(), now, Backend::kSimd))
        << "additive iter " << iter;
    EXPECT_EQ(scan::pad_select(h, st.sdp.data(), st.cum.data(),
                               st.served.data(), now, Backend::kScalar),
              scan::pad_select(h, st.sdp.data(), st.cum.data(),
                               st.served.data(), now, Backend::kSimd))
        << "pad iter " << iter;
    EXPECT_EQ(scan::hpd_select(h, st.sdp.data(), st.cum.data(),
                               st.served.data(), now, g, Backend::kScalar),
              scan::hpd_select(h, st.sdp.data(), st.cum.data(),
                               st.served.data(), now, g, Backend::kSimd))
        << "hpd iter " << iter << " g=" << g;
  }
}

TEST(ScanKernels, FuzzedBprAgreesIncludingVirtualServiceState) {
  Rng rng(0xbeef);
  for (int iter = 0; iter < 5000; ++iter) {
    const double now = 100.0 + static_cast<double>(rng.uniform_index(900));
    const auto n = static_cast<std::uint32_t>(1 + rng.uniform_index(9));
    const FuzzState st = fuzz_state(rng, now, n);
    const auto h = st.heads();

    std::vector<double> rates(h.lanes, 0.0);
    std::vector<double> vs_scalar(h.lanes, 0.0);
    for (std::uint32_t c = 0; c < n; ++c) {
      rates[c] = 0.25 * static_cast<double>(1 + rng.uniform_index(8));
      vs_scalar[c] = static_cast<double>(rng.uniform_index(4)) * 32.0;
    }
    std::vector<double> vs_simd = vs_scalar;
    const double elapsed = static_cast<double>(rng.uniform_index(50));
    const double last_departure = now - elapsed;
    const bool any_departure = rng.uniform01() < 0.8;

    const ClassId a =
        scan::bpr_select(h, rates.data(), vs_scalar.data(), elapsed,
                         last_departure, any_departure, Backend::kScalar);
    const ClassId b =
        scan::bpr_select(h, rates.data(), vs_simd.data(), elapsed,
                         last_departure, any_departure, Backend::kSimd);
    EXPECT_EQ(a, b) << "bpr iter " << iter;
    // The in-place virtual-service update must also be bit-identical.
    EXPECT_EQ(0, std::memcmp(vs_scalar.data(), vs_simd.data(),
                             vs_scalar.size() * sizeof(double)))
        << "bpr vs state iter " << iter;
  }
}

TEST(ScanKernels, ExactTieGoesToHighestClassOnEveryBackend) {
  // All backlogged classes share arrival, size and SDP: every priority is
  // numerically identical, so the paper's tie-break (highest class) decides.
  for (std::uint32_t n : {1u, 2u, 3u, 4u, 5u, 8u, 9u}) {
    const std::uint32_t lanes = scan::padded_lanes(n);
    FuzzState st;
    st.n = n;
    st.arrival.assign(lanes, 0.0);
    st.head_bytes.assign(lanes, 0.0);
    st.mask.assign(lanes, 0);
    st.sdp.assign(lanes, 0.0);
    st.cum.assign(lanes, 0.0);
    st.served.assign(lanes, 0.0);
    for (std::uint32_t c = 0; c < n; ++c) {
      st.mask[c] = ~std::uint64_t{0};
      st.arrival[c] = 10.0;
      st.head_bytes[c] = 100.0;
      st.sdp[c] = 1.0;
    }
    const auto h = st.heads();
    std::vector<double> rates(lanes, 1.0);
    for (Backend be : {Backend::kScalar, Backend::kSimd}) {
      EXPECT_EQ(scan::wtp_select(h, st.sdp.data(), 20.0, be), n - 1);
      EXPECT_EQ(scan::additive_select(h, st.sdp.data(), 20.0, be), n - 1);
      EXPECT_EQ(scan::pad_select(h, st.sdp.data(), st.cum.data(),
                                 st.served.data(), 20.0, be),
                n - 1);
      EXPECT_EQ(scan::hpd_select(h, st.sdp.data(), st.cum.data(),
                                 st.served.data(), 20.0, 0.875, be),
                n - 1);
      std::vector<double> vs(lanes, 0.0);
      EXPECT_EQ(scan::bpr_select(h, rates.data(), vs.data(), 0.0, 20.0, true,
                                 be),
                n - 1);
    }
  }
}

TEST(ScanKernels, SingleBackloggedClassWinsRegardlessOfIndex) {
  for (std::uint32_t n : {1u, 4u, 7u}) {
    for (std::uint32_t only = 0; only < n; ++only) {
      const std::uint32_t lanes = scan::padded_lanes(n);
      FuzzState st;
      st.n = n;
      st.arrival.assign(lanes, 0.0);
      st.head_bytes.assign(lanes, 0.0);
      st.mask.assign(lanes, 0);
      st.sdp.assign(lanes, 0.0);
      st.cum.assign(lanes, 0.0);
      st.served.assign(lanes, 0.0);
      for (std::uint32_t c = 0; c < n; ++c) st.sdp[c] = 1.0 + c;
      st.mask[only] = ~std::uint64_t{0};
      st.arrival[only] = 5.0;
      st.head_bytes[only] = 200.0;
      const auto h = st.heads();
      std::vector<double> rates(lanes, 1.0);
      std::vector<double> vs(lanes, 0.0);
      for (Backend be : {Backend::kScalar, Backend::kSimd}) {
        EXPECT_EQ(scan::wtp_select(h, st.sdp.data(), 9.0, be), only);
        EXPECT_EQ(scan::additive_select(h, st.sdp.data(), 9.0, be), only);
        EXPECT_EQ(scan::pad_select(h, st.sdp.data(), st.cum.data(),
                                   st.served.data(), 9.0, be),
                  only);
        EXPECT_EQ(scan::hpd_select(h, st.sdp.data(), st.cum.data(),
                                   st.served.data(), 9.0, 0.5, be),
                  only);
        std::fill(vs.begin(), vs.end(), 0.0);
        EXPECT_EQ(scan::bpr_select(h, rates.data(), vs.data(), 1.0, 8.0,
                                   true, be),
                  only);
      }
    }
  }
}

// ------------------------------------------------------- scheduler level

// Drives two instances of the same scheduler kind through an identical
// fuzzed enqueue/dequeue interleaving, one forced to the scalar backend and
// one to SIMD, and requires the identical dequeue order.
void differential_run(SchedulerKind kind, std::uint64_t seed) {
  SchedulerConfig config;
  config.sdp = {1.0, 2.0, 4.0, 8.0, 16.0};
  config.link_capacity = 10.0;
  auto a = make_scheduler(kind, config);
  auto b = make_scheduler(kind, config);
  auto* ca = dynamic_cast<ClassBasedScheduler*>(a.get());
  auto* cb = dynamic_cast<ClassBasedScheduler*>(b.get());
  ASSERT_NE(ca, nullptr);
  ASSERT_NE(cb, nullptr);
  ca->set_scan_backend(Backend::kScalar);
  cb->set_scan_backend(Backend::kSimd);

  // All-empty: both report empty and neither produces a packet.
  EXPECT_TRUE(a->empty());
  EXPECT_FALSE(a->dequeue(0.0).has_value());
  EXPECT_FALSE(b->dequeue(0.0).has_value());

  Rng rng(seed);
  double now = 0.0;
  std::uint64_t id = 0;
  for (int step = 0; step < 4000; ++step) {
    now += static_cast<double>(rng.uniform_index(20));
    if (rng.uniform01() < 0.55) {
      const auto cls = static_cast<ClassId>(rng.uniform_index(5));
      const auto bytes =
          static_cast<std::uint32_t>(64 * (1 + rng.uniform_index(3)));
      a->enqueue(testutil::packet(id, cls, bytes, now), now);
      b->enqueue(testutil::packet(id, cls, bytes, now), now);
      ++id;
    } else {
      auto pa = a->dequeue(now);
      auto pb = b->dequeue(now);
      ASSERT_EQ(pa.has_value(), pb.has_value()) << "step " << step;
      if (pa.has_value()) {
        EXPECT_EQ(pa->id, pb->id) << "step " << step;
        EXPECT_EQ(pa->cls, pb->cls) << "step " << step;
      }
    }
  }
  // Drain what is left; order must stay identical.
  while (!a->empty()) {
    now += 1.0;
    auto pa = a->dequeue(now);
    auto pb = b->dequeue(now);
    ASSERT_TRUE(pa.has_value());
    ASSERT_TRUE(pb.has_value());
    EXPECT_EQ(pa->id, pb->id);
  }
  EXPECT_TRUE(b->empty());
}

TEST(ScanDifferential, WtpDequeueOrderMatches) {
  differential_run(SchedulerKind::kWtp, 11);
}
TEST(ScanDifferential, AdditiveDequeueOrderMatches) {
  differential_run(SchedulerKind::kAdditiveWtp, 22);
}
TEST(ScanDifferential, BprDequeueOrderMatches) {
  differential_run(SchedulerKind::kBpr, 33);
}
TEST(ScanDifferential, PadDequeueOrderMatches) {
  differential_run(SchedulerKind::kPad, 44);
}
TEST(ScanDifferential, HpdDequeueOrderMatches) {
  differential_run(SchedulerKind::kHpd, 55);
}

TEST(ScanDifferential, BurstDequeueOrderMatchesAcrossBackends) {
  for (SchedulerKind kind :
       {SchedulerKind::kWtp, SchedulerKind::kAdditiveWtp, SchedulerKind::kBpr,
        SchedulerKind::kPad, SchedulerKind::kHpd}) {
    SchedulerConfig config;
    config.sdp = {1.0, 2.0, 4.0};
    config.link_capacity = 10.0;
    auto a = make_scheduler(kind, config);
    auto b = make_scheduler(kind, config);
    dynamic_cast<ClassBasedScheduler*>(a.get())->set_scan_backend(
        Backend::kScalar);
    dynamic_cast<ClassBasedScheduler*>(b.get())->set_scan_backend(
        Backend::kSimd);
    Rng rng(77);
    double now = 0.0;
    std::uint64_t id = 0;
    Packet out_a[8], out_b[8];
    for (int step = 0; step < 600; ++step) {
      now += 1.0;
      if (rng.uniform01() < 0.6) {
        const auto cls = static_cast<ClassId>(rng.uniform_index(3));
        a->enqueue(testutil::packet(id, cls, 100, now), now);
        b->enqueue(testutil::packet(id, cls, 100, now), now);
        ++id;
      } else {
        const auto k = static_cast<std::uint32_t>(1 + rng.uniform_index(4));
        const std::uint32_t na = a->dequeue_burst(now, out_a, k);
        const std::uint32_t nb = b->dequeue_burst(now, out_b, k);
        ASSERT_EQ(na, nb) << "step " << step;
        for (std::uint32_t i = 0; i < na; ++i) {
          EXPECT_EQ(out_a[i].id, out_b[i].id) << "step " << step;
        }
      }
    }
  }
}

// ------------------------------------------------- batched multi-link scan

TEST(ScanLinks, IdleLinksReportMinusOneAndBusyOnesTheWtpWinner) {
  Rng rng(0xfeed);
  const double now = 500.0;
  std::vector<FuzzState> states;
  states.push_back(fuzz_state(rng, now, 4));
  states.push_back(fuzz_state(rng, now, 4));
  // A fully idle link in the middle of the sweep.
  FuzzState idle = fuzz_state(rng, now, 4);
  for (auto& m : idle.mask) m = 0;
  states.insert(states.begin() + 1, idle);

  std::vector<scan::Heads> heads;
  std::vector<const double*> sdp;
  for (const auto& st : states) {
    heads.push_back(st.heads());
    sdp.push_back(st.sdp.data());
  }
  std::vector<std::int32_t> winners(states.size(), -2);
  const std::uint32_t busy =
      scan::scan_links(heads.data(), sdp.data(), now,
                       static_cast<std::uint32_t>(states.size()),
                       Backend::kScalar, winners.data());
  EXPECT_EQ(busy, 2u);
  EXPECT_EQ(winners[1], -1);
  for (const std::size_t i : {std::size_t{0}, std::size_t{2}}) {
    ASSERT_GE(winners[i], 0);
    EXPECT_EQ(static_cast<ClassId>(winners[i]),
              scan::wtp_select(heads[i], sdp[i], now, Backend::kScalar));
  }
}

TEST(ScanLinks, FuzzedSweepAgreesAcrossBackends) {
  Rng rng(0xabcd);
  for (int iter = 0; iter < 1000; ++iter) {
    const double now = 100.0 + static_cast<double>(rng.uniform_index(900));
    const auto count = static_cast<std::uint32_t>(1 + rng.uniform_index(12));
    std::vector<FuzzState> states;
    states.reserve(count);
    for (std::uint32_t i = 0; i < count; ++i) {
      const auto n = static_cast<std::uint32_t>(1 + rng.uniform_index(9));
      states.push_back(fuzz_state(rng, now, n));
      if (rng.uniform01() < 0.25) {  // some links in the sweep sit idle
        for (auto& m : states.back().mask) m = 0;
      }
    }
    std::vector<scan::Heads> heads;
    std::vector<const double*> sdp;
    for (const auto& st : states) {
      heads.push_back(st.heads());
      sdp.push_back(st.sdp.data());
    }
    std::vector<std::int32_t> scalar(count), simd(count);
    const std::uint32_t busy_scalar =
        scan::scan_links(heads.data(), sdp.data(), now, count,
                         Backend::kScalar, scalar.data());
    const std::uint32_t busy_simd =
        scan::scan_links(heads.data(), sdp.data(), now, count, Backend::kSimd,
                         simd.data());
    EXPECT_EQ(busy_scalar, busy_simd) << "iter " << iter;
    EXPECT_EQ(scalar, simd) << "iter " << iter;
  }
}

}  // namespace
}  // namespace pds
