#include <gtest/gtest.h>

#include "exp/thread_pool.hpp"
#include "net/scenario.hpp"
#include "obs/report.hpp"

namespace pds {
namespace {

const char* kValid = R"(
# A two-hop chain with a renewal source and a short CBR flow.
link a capacity=39.375 sched=wtp sdp=1,2,4,8
link b capacity=39.375 sched=wtp sdp=1,2,4,8
route chain a b
source renewal chain class=0 gap=30 size=441 pareto=1.9
source cbr chain class=3 count=50 size=441 interval=20 start=10000
run until=50000 warmup=5000 seed=3
)";

// ----------------------------------------------------------------- parsing

TEST(ScenarioParse, AcceptsTheReferenceScenario) {
  const auto s = parse_scenario(kValid);
  ASSERT_EQ(s.links.size(), 2u);
  EXPECT_EQ(s.links[0].name, "a");
  EXPECT_EQ(s.links[0].kind, SchedulerKind::kWtp);
  ASSERT_EQ(s.links[0].sdp.size(), 4u);
  ASSERT_EQ(s.routes.size(), 1u);
  EXPECT_EQ(s.routes[0].links, (std::vector<std::string>{"a", "b"}));
  ASSERT_EQ(s.sources.size(), 2u);
  EXPECT_EQ(s.sources[0].kind, ScenarioSourceKind::kRenewal);
  EXPECT_DOUBLE_EQ(s.sources[0].pareto_alpha, 1.9);
  EXPECT_EQ(s.sources[1].kind, ScenarioSourceKind::kCbr);
  EXPECT_DOUBLE_EQ(s.sources[1].start, 10000.0);
  EXPECT_DOUBLE_EQ(s.run.until, 50000.0);
  EXPECT_EQ(s.run.seed, 3u);
}

TEST(ScenarioParse, PoissonFlagSelectsExponentialGaps) {
  const auto s = parse_scenario(
      "link a capacity=10 sched=fcfs sdp=1\n"
      "route r a\n"
      "source renewal r class=0 gap=5 size=100 poisson\n"
      "run until=100\n");
  EXPECT_DOUBLE_EQ(s.sources[0].pareto_alpha, 0.0);
}

TEST(ScenarioParse, CommentsAndBlankLinesIgnored) {
  EXPECT_NO_THROW(parse_scenario(
      "# header\n\nlink a capacity=10 sched=fcfs sdp=1\n"
      "route r a   # inline comment\n"
      "source renewal r class=0 gap=5 size=100\n"
      "run until=10\n"));
}

TEST(ScenarioParse, RejectsUnknownDirective) {
  try {
    parse_scenario("frobnicate x\n");
    FAIL() << "expected throw";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("line 1"), std::string::npos);
  }
}

TEST(ScenarioParse, RejectsDanglingReferences) {
  EXPECT_THROW(parse_scenario("link a capacity=10 sched=fcfs sdp=1\n"
                              "route r a b\n"),
               std::invalid_argument);
  EXPECT_THROW(parse_scenario("link a capacity=10 sched=fcfs sdp=1\n"
                              "route r a\n"
                              "source renewal other class=0 gap=5 size=9\n"),
               std::invalid_argument);
}

TEST(ScenarioParse, RejectsDuplicatesAndMissingSections) {
  EXPECT_THROW(parse_scenario("link a capacity=10 sched=fcfs sdp=1\n"
                              "link a capacity=10 sched=fcfs sdp=1\n"),
               std::invalid_argument);
  EXPECT_THROW(parse_scenario(""), std::invalid_argument);
  // No run directive.
  EXPECT_THROW(parse_scenario("link a capacity=10 sched=fcfs sdp=1\n"
                              "route r a\n"
                              "source renewal r class=0 gap=5 size=9\n"),
               std::invalid_argument);
  // No sources.
  EXPECT_THROW(parse_scenario("link a capacity=10 sched=fcfs sdp=1\n"
                              "route r a\nrun until=10\n"),
               std::invalid_argument);
}

TEST(ScenarioParse, RejectsUnknownOrMissingOptions) {
  EXPECT_THROW(parse_scenario("link a capacity=10 sched=fcfs sdp=1 bogus=1\n"
                              "route r a\n"
                              "source renewal r class=0 gap=5 size=9\n"
                              "run until=10\n"),
               std::invalid_argument);
  EXPECT_THROW(parse_scenario("link a sched=fcfs sdp=1\n"),  // no capacity
               std::invalid_argument);
  EXPECT_THROW(parse_scenario("link a capacity=ten sched=fcfs sdp=1\n"),
               std::invalid_argument);
}

// ------------------------------------------------------------- error paths

// Parse and return the thrown message ("" when nothing threw).
std::string parse_error(const std::string& text) {
  try {
    parse_scenario(text);
  } catch (const std::invalid_argument& e) {
    return e.what();
  }
  return {};
}

TEST(ScenarioErrors, MalformedLinkLinesNameTheirLine) {
  EXPECT_NE(parse_error("# header\nlink\n")
                .find("scenario line 2: link needs a name"),
            std::string::npos);
  EXPECT_NE(parse_error("link a capacity=ten sched=fcfs sdp=1\n")
                .find("scenario line 1: malformed number: ten"),
            std::string::npos);
  EXPECT_NE(parse_error("link a sched=fcfs sdp=1\n")
                .find("line 1: missing required option capacity=..."),
            std::string::npos);
  EXPECT_NE(parse_error("link a capacity=10 sched=fcfs sdp=1,,2\n")
                .find("line 1: empty element in sdp"),
            std::string::npos);
}

TEST(ScenarioErrors, MalformedSourceLinesNameTheirLine) {
  const char* prefix =
      "link a capacity=10 sched=fcfs sdp=1\n"
      "route r a\n";
  EXPECT_NE(parse_error(std::string(prefix) + "source renewal\n")
                .find("scenario line 3: source needs a kind and route"),
            std::string::npos);
  EXPECT_NE(parse_error(std::string(prefix) + "source teleport r class=0\n")
                .find("scenario line 3: unknown source kind teleport"),
            std::string::npos);
  EXPECT_NE(parse_error(std::string(prefix) +
                        "source renewal r class=0 gap=5 size=100 warp=9\n")
                .find("scenario line 3: unknown option warp"),
            std::string::npos);
}

TEST(ScenarioErrors, MalformedRunLinesNameTheirLine) {
  const char* prefix =
      "link a capacity=10 sched=fcfs sdp=1\n"
      "route r a\n"
      "source renewal r class=0 gap=5 size=100\n";
  EXPECT_NE(parse_error(std::string(prefix) + "run warmup=5\n")
                .find("scenario line 4: missing required option until=..."),
            std::string::npos);
  EXPECT_NE(parse_error(std::string(prefix) + "run until=10\nrun until=20\n")
                .find("scenario line 5: duplicate run directive"),
            std::string::npos);
}

TEST(ScenarioErrors, DuplicateIdsNameTheOffendingLine) {
  EXPECT_NE(parse_error("link a capacity=10 sched=fcfs sdp=1\n"
                        "link b capacity=10 sched=fcfs sdp=1\n"
                        "link a capacity=10 sched=fcfs sdp=1\n")
                .find("scenario line 3: duplicate link name a"),
            std::string::npos);
  EXPECT_NE(parse_error("link a capacity=10 sched=fcfs sdp=1\n"
                        "route r a\n"
                        "route r a\n")
                .find("scenario line 3: duplicate route name r"),
            std::string::npos);
}

TEST(ScenarioErrors, MissingSectionsProduceTheThreeDefinesNoThrows) {
  EXPECT_NE(parse_error("# empty but commented\n")
                .find("scenario defines no links"),
            std::string::npos);
  EXPECT_NE(parse_error("link a capacity=10 sched=fcfs sdp=1\n"
                        "route r a\n"
                        "source renewal r class=0 gap=5 size=100\n")
                .find("scenario has no run directive"),
            std::string::npos);
  EXPECT_NE(parse_error("link a capacity=10 sched=fcfs sdp=1\n"
                        "route r a\n"
                        "run until=10\n")
                .find("scenario defines no sources"),
            std::string::npos);
}

// ------------------------------------------------------- graph-layer grammar

const char* kGraph = R"(
node a
node b
node c
edge ab from=a to=b capacity=39.375 sched=wtp sdp=1,2
edge ba from=b to=a capacity=39.375 sched=wtp sdp=1,2
edge bc from=b to=c capacity=39.375 sched=wtp sdp=1,2
edge cb from=c to=b capacity=39.375 sched=wtp sdp=1,2
route fwd from=a to=c
source renewal fwd class=0 gap=30 size=441 poisson
flows fwd class=1 users=4 size=441 think=100 deadline=50
run until=20000 warmup=2000 seed=9
)";

TEST(ScenarioGraph, ParsesNodesEdgesRoutedRoutesAndFlows) {
  const auto s = parse_scenario(kGraph);
  EXPECT_EQ(s.nodes, (std::vector<std::string>{"a", "b", "c"}));
  ASSERT_EQ(s.links.size(), 4u);
  EXPECT_EQ(s.links[0].from, "a");
  EXPECT_EQ(s.links[0].to, "b");
  ASSERT_EQ(s.routes.size(), 1u);
  EXPECT_TRUE(s.routes[0].links.empty());
  EXPECT_EQ(s.routes[0].from, "a");
  EXPECT_EQ(s.routes[0].to, "c");
  ASSERT_EQ(s.flows.size(), 1u);
  EXPECT_EQ(s.flows[0].route, "fwd");
  EXPECT_EQ(s.flows[0].users, 4u);
  EXPECT_DOUBLE_EQ(s.flows[0].deadline, 50.0);
}

TEST(ScenarioGraph, TopologyDirectiveExpandsToNodesAndDirectedLinks) {
  const auto s = parse_scenario(
      "topology ring n=4 capacity=10 sched=fcfs sdp=1\n"
      "route r from=n0 to=n2\n"
      "source renewal r class=0 gap=30 size=100 poisson\n"
      "run until=1000\n");
  EXPECT_EQ(s.nodes.size(), 4u);
  EXPECT_EQ(s.links.size(), 8u);  // one per direction of 4 ring edges
  EXPECT_EQ(s.links[0].name, "n0>n1");
  EXPECT_EQ(s.links[1].name, "n1>n0");
}

TEST(ScenarioGraph, UnknownNodeNamesItsLine) {
  EXPECT_NE(parse_error("node a\n"
                        "edge e from=a to=ghost capacity=10 sched=fcfs "
                        "sdp=1\n")
                .find("scenario line 2: unknown node ghost"),
            std::string::npos);
  EXPECT_NE(parse_error("node a\nnode b\n"
                        "edge e from=a to=b capacity=10 sched=fcfs sdp=1\n"
                        "route r from=ghost to=b\n")
                .find("scenario line 4: unknown node ghost"),
            std::string::npos);
}

TEST(ScenarioGraph, UnreachablePairNamesItsLine) {
  // a->b exists but nothing reaches c.
  EXPECT_NE(parse_error("node a\nnode b\nnode c\n"
                        "edge ab from=a to=b capacity=10 sched=fcfs sdp=1\n"
                        "route r from=a to=c\n")
                .find("scenario line 5: no path from a to c"),
            std::string::npos);
  // Directed: b->a is not implied by a->b.
  EXPECT_NE(parse_error("node a\nnode b\n"
                        "edge ab from=a to=b capacity=10 sched=fcfs sdp=1\n"
                        "route r from=b to=a\n")
                .find("scenario line 4: no path from b to a"),
            std::string::npos);
}

TEST(ScenarioGraph, DuplicateNodeAndEdgeNamesNameTheirLine) {
  EXPECT_NE(parse_error("node a\nnode a\n")
                .find("scenario line 2: duplicate node name a"),
            std::string::npos);
  EXPECT_NE(parse_error("node a\nnode b\n"
                        "edge e from=a to=b capacity=10 sched=fcfs sdp=1\n"
                        "edge e from=b to=a capacity=10 sched=fcfs sdp=1\n")
                .find("scenario line 4: duplicate link name e"),
            std::string::npos);
  // A generated topology name colliding with a manual one reports the
  // topology line.
  EXPECT_NE(parse_error("node n0\nnode n1\n"
                        "edge n0>n1 from=n0 to=n1 capacity=10 sched=fcfs "
                        "sdp=1\n"
                        "topology line n=2 capacity=10 sched=fcfs sdp=1\n")
                .find("scenario line 4: duplicate node name n0"),
            std::string::npos);
}

TEST(ScenarioGraph, FlowsValidationNamesItsLine) {
  const std::string prefix =
      "node a\nnode b\n"
      "edge ab from=a to=b capacity=10 sched=fcfs sdp=1\n"
      "edge ba from=b to=a capacity=10 sched=fcfs sdp=1\n"
      "route r from=a to=b\n";
  EXPECT_NE(parse_error(prefix + "flows ghost class=0 users=1 size=100 "
                                 "think=10\n")
                .find("scenario line 6: unknown route ghost"),
            std::string::npos);
  EXPECT_NE(parse_error(prefix + "flows r class=0 users=1 size=100 think=10 "
                                 "retries=2\n")
                .find("scenario line 6: retries need a positive rto"),
            std::string::npos);
  // Flows over an explicit (link-list) route need an explicit reverse.
  EXPECT_NE(parse_error("link l capacity=10 sched=fcfs sdp=1\n"
                        "route r l\n"
                        "flows r class=0 users=1 size=100 think=10\n")
                .find("scenario line 3: flows over an explicit route need "
                      "reverse="),
            std::string::npos);
  // Reverse direction must be reachable: a->b only.
  EXPECT_NE(parse_error("node a\nnode b\n"
                        "edge ab from=a to=b capacity=10 sched=fcfs sdp=1\n"
                        "route r from=a to=b\n"
                        "flows r class=0 users=1 size=100 think=10\n")
                .find("scenario line 5: no path from b to a"),
            std::string::npos);
}

// ----------------------------------------------------------------- running

TEST(ScenarioRun, ExecutesAndReports) {
  const auto report = run_scenario(kValid);
  EXPECT_GT(report.total_exits, 500u);
  ASSERT_EQ(report.link_stats.size(), 2u);
  for (const auto& ls : report.link_stats) {
    EXPECT_GT(ls.utilization, 0.1);
    EXPECT_LT(ls.utilization, 1.0);
    EXPECT_GT(ls.packets_sent, 0u);
  }
  // Both the renewal class (0) and the CBR class (3) produced stats.
  bool saw0 = false, saw3 = false;
  for (const auto& rs : report.route_stats) {
    if (rs.cls == 0) saw0 = true;
    if (rs.cls == 3) saw3 = true;
    EXPECT_GE(rs.mean_delay, 0.0);
    EXPECT_GE(rs.p95_delay, 0.0);  // mostly-zero delays are legal at 37% load
  }
  EXPECT_TRUE(saw0);
  EXPECT_TRUE(saw3);
}

TEST(ScenarioRun, SeedOverrideChangesTheRun) {
  const auto a = run_scenario(kValid);
  const auto b = run_scenario(kValid, 99u);
  const auto c = run_scenario(kValid, 99u);
  EXPECT_EQ(b.total_exits, c.total_exits);  // deterministic per seed
  EXPECT_NE(a.total_exits, b.total_exits);
}

TEST(ScenarioRun, DifferentiationShowsUpInTheReport) {
  // Two classes at heavy load on one WTP link: class-1 mean delay must be
  // about half of class-0's.
  const char* scenario = R"(
link l capacity=39.375 sched=wtp sdp=1,2
route r l
source renewal r class=0 gap=23.6 size=441 pareto=1.9
source renewal r class=1 gap=23.6 size=441 pareto=1.9
run until=400000 warmup=40000 seed=5
)";
  const auto report = run_scenario(scenario);
  double d0 = 0.0, d1 = 0.0;
  for (const auto& rs : report.route_stats) {
    if (rs.cls == 0) d0 = rs.mean_delay;
    if (rs.cls == 1) d1 = rs.mean_delay;
  }
  ASSERT_GT(d0, 0.0);
  ASSERT_GT(d1, 0.0);
  EXPECT_NEAR(d0 / d1, 2.0, 0.4);
}

// ------------------------------------------------------------------ golden

// Mirror of examples/scenarios/y_merge.pds. The expected numbers below were
// captured on the pre-graph-refactor runner; they pin the legacy
// (link/route/source) execution path to byte-identical behavior across the
// topology-layer refactor.
const char* kYMerge = R"(
link accessA  capacity=39.375 sched=wtp sdp=1,2,4,8
link accessB  capacity=39.375 sched=wtp sdp=1,2,4,8
link backbone capacity=78.75  sched=wtp sdp=1,2,4,8

route pathA accessA backbone
route pathB accessB backbone

source mix pathA fractions=40,30,20,10 gap=14 size=441 pareto=1.9
source mix pathB fractions=40,30,20,10 gap=14 size=441 pareto=1.9

source cbr pathA class=3 count=2000 size=200 interval=100 start=10000

run until=300000 warmup=30000 seed=42
)";

TEST(ScenarioGolden, YMergeReproducesThePreRefactorRun) {
  const auto report = run_scenario(kYMerge);
  EXPECT_EQ(report.total_exits, 44766u);
  struct Row { const char* route; ClassId cls; std::uint64_t packets; };
  const Row expected[] = {
      {"pathA", 0, 7801}, {"pathA", 1, 5773}, {"pathA", 2, 3811},
      {"pathA", 3, 3753}, {"pathB", 0, 7578}, {"pathB", 1, 5913},
      {"pathB", 2, 3790}, {"pathB", 3, 1882},
  };
  ASSERT_EQ(report.route_stats.size(), 8u);
  for (std::size_t i = 0; i < 8; ++i) {
    EXPECT_EQ(report.route_stats[i].route, expected[i].route);
    EXPECT_EQ(report.route_stats[i].cls, expected[i].cls);
    EXPECT_EQ(report.route_stats[i].packets, expected[i].packets) << i;
  }
  ASSERT_EQ(report.link_stats.size(), 3u);
  EXPECT_EQ(report.link_stats[0].packets_sent, 23457u);
  EXPECT_EQ(report.link_stats[1].packets_sent, 21311u);
  EXPECT_EQ(report.link_stats[2].packets_sent, 44767u);
}

TEST(ScenarioGolden, DefaultOptionsMatchTheLegacyOverload) {
  ScenarioOptions options;
  const auto a = run_scenario(kYMerge);
  const auto b = run_scenario(kYMerge, options);
  EXPECT_EQ(a.total_exits, b.total_exits);
  ASSERT_EQ(a.route_stats.size(), b.route_stats.size());
  for (std::size_t i = 0; i < a.route_stats.size(); ++i) {
    EXPECT_EQ(a.route_stats[i].packets, b.route_stats[i].packets);
    EXPECT_DOUBLE_EQ(a.route_stats[i].mean_delay,
                     b.route_stats[i].mean_delay);
  }
}

// ------------------------------------------------------------- new options

TEST(ScenarioOptionsRun, HorizonScaleShortensTheRun) {
  ScenarioOptions options;
  options.horizon_scale = 0.1;
  const auto quick = run_scenario(kValid, options);
  const auto full = run_scenario(kValid);
  EXPECT_GT(quick.total_exits, 0u);
  EXPECT_LT(quick.total_exits, full.total_exits / 4);
}

TEST(ScenarioOptionsRun, FaultPlanDropsPacketsAndFillsLinkStats) {
  ScenarioOptions options;
  options.fault_plan = "down a at=20000 for=5000 mode=drop\n";
  const auto report = run_scenario(kValid, options);
  EXPECT_TRUE(report.faulted);
  EXPECT_EQ(report.fault_episodes_scheduled, 1u);
  EXPECT_EQ(report.fault_episodes, 1u);
  EXPECT_GT(report.fault_drops, 0u);
  ASSERT_EQ(report.link_stats.size(), 2u);
  EXPECT_EQ(report.link_stats[0].sched, "wtp");
  EXPECT_GT(report.link_stats[0].fault_drops, 0u);
  EXPECT_EQ(report.link_stats[1].fault_drops, 0u);
  EXPECT_EQ(report.link_stats[0].burst_drops, 0u);
}

TEST(ScenarioParse, BufferOptionDeclaresADropTailLink) {
  const auto s = parse_scenario(
      "link a capacity=10 sched=wtp sdp=1,2 buffer=50\n"
      "link b capacity=10 sched=wtp sdp=1,2\n"
      "route r a b\n"
      "source renewal r class=0 gap=5 size=100\n"
      "run until=100\n");
  EXPECT_EQ(s.links[0].buffer, 50u);
  EXPECT_EQ(s.links[1].buffer, 0u);  // default stays lossless
  EXPECT_THROW(parse_scenario("link a capacity=10 sched=wtp sdp=1,2 "
                              "buffer=-1\nroute r a\n"
                              "source renewal r class=0 gap=5 size=100\n"
                              "run until=100\n"),
               std::invalid_argument);
}

const char* kBuffered = R"(
link a capacity=39.375 sched=wtp sdp=1,2,4,8 buffer=100
link b capacity=39.375 sched=wtp sdp=1,2,4,8
route chain a b
source renewal chain class=0 gap=30 size=441 pareto=1.9
source cbr chain class=3 count=50 size=441 interval=20 start=10000
run until=50000 warmup=5000 seed=3
)";

TEST(ScenarioOptionsRun, LossFaultsOnBufferedLinksReportBurstDrops) {
  // buffer= wraps the link in a LossyLink, which is what lets fault `loss`
  // episodes target it; the episode's drops surface as burst_drops.
  ScenarioOptions options;
  options.fault_plan = "loss a at=10000 for=20000 rate=0.5\n";
  const auto report = run_scenario(kBuffered, options);
  ASSERT_EQ(report.link_stats.size(), 2u);
  EXPECT_GT(report.link_stats[0].burst_drops, 0u);
  EXPECT_EQ(report.link_stats[1].burst_drops, 0u);
  const auto scenario = parse_scenario(kBuffered);
  const std::string json = scenario_run_report(scenario, report, 3u).dump();
  EXPECT_NE(json.find("\"burst_drops\":"), std::string::npos);
  EXPECT_NE(json.find("\"buffer_drops\":"), std::string::npos);
}

TEST(ScenarioOptionsRun, LossFaultsOnLosslessLinksAreRejected) {
  ScenarioOptions options;
  options.fault_plan = "loss a at=10000 for=2000 rate=0.5\n";
  EXPECT_THROW(run_scenario(kValid, options), std::invalid_argument);
}

TEST(ScenarioOptionsRun, ControlPlanReconfiguresAndFillsTheReport) {
  ScenarioOptions options;
  options.control_plan =
      "retune a at=15000 w=1,1,1,1\n"
      "class a at=20000 drain=0\n"
      "class a at=30000 add=0\n"
      "swap b at=25000 sched=pad\n"
      "shed a at=35000 for=5000 watermark=1 classes=1\n";
  const auto report = run_scenario(kValid, options);
  EXPECT_TRUE(report.controlled);
  EXPECT_EQ(report.control_episodes_scheduled, 5u);
  EXPECT_EQ(report.control_episodes, 5u);
  EXPECT_EQ(report.control_retunes, 1u);
  EXPECT_EQ(report.control_swaps, 1u);
  EXPECT_EQ(report.control_class_changes, 2u);
  EXPECT_EQ(report.control_sheds, 1u);
  // The drain window spans ~333 class-0 renewal arrivals on link a.
  EXPECT_GT(report.drain_drops, 0u);
  ASSERT_EQ(report.link_stats.size(), 2u);
  EXPECT_EQ(report.link_stats[0].control_drops,
            report.drain_drops + report.shed_drops);
  EXPECT_EQ(report.link_stats[1].control_drops, 0u);
  // A controlled run still delivers traffic end to end.
  EXPECT_GT(report.total_exits, 0u);
}

TEST(ScenarioOptionsRun, UncontrolledReportHasNoControlSection) {
  const auto scenario = parse_scenario(kValid);
  const auto report = run_scenario(scenario, ScenarioOptions{});
  EXPECT_FALSE(report.controlled);
  const std::string json = scenario_run_report(scenario, report, 3u).dump();
  EXPECT_EQ(json.find("\"control\":"), std::string::npos);
}

TEST(ScenarioOptionsRun, RunReportCarriesAControlSection) {
  const auto scenario = parse_scenario(kValid);
  ScenarioOptions options;
  options.control_plan =
      "retune a at=15000 w=1,1,1,1\n"
      "swap b at=25000 sched=pad\n";
  const auto report = run_scenario(scenario, options);
  const std::string json = scenario_run_report(scenario, report, 3u).dump();
  EXPECT_NE(json.find("\"control\":"), std::string::npos);
  EXPECT_NE(json.find("\"scheduled\":2"), std::string::npos);
  EXPECT_NE(json.find("\"completed\":2"), std::string::npos);
  EXPECT_NE(json.find("\"retunes\":1"), std::string::npos);
  EXPECT_NE(json.find("\"swaps\":1"), std::string::npos);
  EXPECT_NE(json.find("\"class_changes\":0"), std::string::npos);
  EXPECT_NE(json.find("\"sheds\":0"), std::string::npos);
  EXPECT_NE(json.find("\"shed_drops\":0"), std::string::npos);
  EXPECT_NE(json.find("\"drain_drops\":0"), std::string::npos);
  EXPECT_NE(json.find("\"control_drops\":"), std::string::npos);
}

TEST(ScenarioJobs, ControlledRunsAreByteIdenticalAcrossJobs) {
  // The control plane's determinism contract: every control boundary is a
  // scripted simulator event, so a controlled run must not depend on the
  // worker count.
  const auto scenario = parse_scenario(kValid);
  ScenarioOptions options;
  options.control_plan =
      "retune a at=15000 w=1,2,3,4\n"
      "swap a at=25000 sched=hpd\n"
      "shed b at=30000 for=5000 watermark=2 classes=2\n";
  ThreadPool::set_global_workers(1);
  const auto one = run_scenario(scenario, options);
  const std::string json_one = scenario_run_report(scenario, one, 3u).dump();
  ThreadPool::set_global_workers(4);
  const auto four = run_scenario(scenario, options);
  const std::string json_four = scenario_run_report(scenario, four, 3u).dump();
  ThreadPool::set_global_workers(0);  // restore auto for other suites
  EXPECT_EQ(json_one, json_four);
}

TEST(ScenarioOptionsRun, RunReportCarriesFlowsAndFaultSections) {
  const auto scenario = parse_scenario(kGraph);
  ScenarioOptions options;
  options.fault_plan = "down ab at=5000 for=500 mode=drop\n";
  const auto report = run_scenario(scenario, options);
  const auto doc = scenario_run_report(scenario, report, 9u);
  const std::string json = doc.dump();
  EXPECT_NE(json.find("\"schema\":\"pds.run_report/1\""), std::string::npos);
  EXPECT_NE(json.find("\"kind\":\"scenario\""), std::string::npos);
  EXPECT_NE(json.find("\"flows\":"), std::string::npos);
  EXPECT_NE(json.find("\"slo_attainment\":"), std::string::npos);
  EXPECT_NE(json.find("\"faults\":"), std::string::npos);
  // Deterministic: same run, same document.
  const auto again = run_scenario(scenario, options);
  EXPECT_EQ(json, scenario_run_report(scenario, again, 9u).dump());
}

}  // namespace
}  // namespace pds
