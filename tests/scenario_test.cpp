#include <gtest/gtest.h>

#include "net/scenario.hpp"

namespace pds {
namespace {

const char* kValid = R"(
# A two-hop chain with a renewal source and a short CBR flow.
link a capacity=39.375 sched=wtp sdp=1,2,4,8
link b capacity=39.375 sched=wtp sdp=1,2,4,8
route chain a b
source renewal chain class=0 gap=30 size=441 pareto=1.9
source cbr chain class=3 count=50 size=441 interval=20 start=10000
run until=50000 warmup=5000 seed=3
)";

// ----------------------------------------------------------------- parsing

TEST(ScenarioParse, AcceptsTheReferenceScenario) {
  const auto s = parse_scenario(kValid);
  ASSERT_EQ(s.links.size(), 2u);
  EXPECT_EQ(s.links[0].name, "a");
  EXPECT_EQ(s.links[0].kind, SchedulerKind::kWtp);
  ASSERT_EQ(s.links[0].sdp.size(), 4u);
  ASSERT_EQ(s.routes.size(), 1u);
  EXPECT_EQ(s.routes[0].links, (std::vector<std::string>{"a", "b"}));
  ASSERT_EQ(s.sources.size(), 2u);
  EXPECT_EQ(s.sources[0].kind, ScenarioSourceKind::kRenewal);
  EXPECT_DOUBLE_EQ(s.sources[0].pareto_alpha, 1.9);
  EXPECT_EQ(s.sources[1].kind, ScenarioSourceKind::kCbr);
  EXPECT_DOUBLE_EQ(s.sources[1].start, 10000.0);
  EXPECT_DOUBLE_EQ(s.run.until, 50000.0);
  EXPECT_EQ(s.run.seed, 3u);
}

TEST(ScenarioParse, PoissonFlagSelectsExponentialGaps) {
  const auto s = parse_scenario(
      "link a capacity=10 sched=fcfs sdp=1\n"
      "route r a\n"
      "source renewal r class=0 gap=5 size=100 poisson\n"
      "run until=100\n");
  EXPECT_DOUBLE_EQ(s.sources[0].pareto_alpha, 0.0);
}

TEST(ScenarioParse, CommentsAndBlankLinesIgnored) {
  EXPECT_NO_THROW(parse_scenario(
      "# header\n\nlink a capacity=10 sched=fcfs sdp=1\n"
      "route r a   # inline comment\n"
      "source renewal r class=0 gap=5 size=100\n"
      "run until=10\n"));
}

TEST(ScenarioParse, RejectsUnknownDirective) {
  try {
    parse_scenario("frobnicate x\n");
    FAIL() << "expected throw";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("line 1"), std::string::npos);
  }
}

TEST(ScenarioParse, RejectsDanglingReferences) {
  EXPECT_THROW(parse_scenario("link a capacity=10 sched=fcfs sdp=1\n"
                              "route r a b\n"),
               std::invalid_argument);
  EXPECT_THROW(parse_scenario("link a capacity=10 sched=fcfs sdp=1\n"
                              "route r a\n"
                              "source renewal other class=0 gap=5 size=9\n"),
               std::invalid_argument);
}

TEST(ScenarioParse, RejectsDuplicatesAndMissingSections) {
  EXPECT_THROW(parse_scenario("link a capacity=10 sched=fcfs sdp=1\n"
                              "link a capacity=10 sched=fcfs sdp=1\n"),
               std::invalid_argument);
  EXPECT_THROW(parse_scenario(""), std::invalid_argument);
  // No run directive.
  EXPECT_THROW(parse_scenario("link a capacity=10 sched=fcfs sdp=1\n"
                              "route r a\n"
                              "source renewal r class=0 gap=5 size=9\n"),
               std::invalid_argument);
  // No sources.
  EXPECT_THROW(parse_scenario("link a capacity=10 sched=fcfs sdp=1\n"
                              "route r a\nrun until=10\n"),
               std::invalid_argument);
}

TEST(ScenarioParse, RejectsUnknownOrMissingOptions) {
  EXPECT_THROW(parse_scenario("link a capacity=10 sched=fcfs sdp=1 bogus=1\n"
                              "route r a\n"
                              "source renewal r class=0 gap=5 size=9\n"
                              "run until=10\n"),
               std::invalid_argument);
  EXPECT_THROW(parse_scenario("link a sched=fcfs sdp=1\n"),  // no capacity
               std::invalid_argument);
  EXPECT_THROW(parse_scenario("link a capacity=ten sched=fcfs sdp=1\n"),
               std::invalid_argument);
}

// ------------------------------------------------------------- error paths

// Parse and return the thrown message ("" when nothing threw).
std::string parse_error(const std::string& text) {
  try {
    parse_scenario(text);
  } catch (const std::invalid_argument& e) {
    return e.what();
  }
  return {};
}

TEST(ScenarioErrors, MalformedLinkLinesNameTheirLine) {
  EXPECT_NE(parse_error("# header\nlink\n")
                .find("scenario line 2: link needs a name"),
            std::string::npos);
  EXPECT_NE(parse_error("link a capacity=ten sched=fcfs sdp=1\n")
                .find("scenario line 1: malformed number: ten"),
            std::string::npos);
  EXPECT_NE(parse_error("link a sched=fcfs sdp=1\n")
                .find("line 1: missing required option capacity=..."),
            std::string::npos);
  EXPECT_NE(parse_error("link a capacity=10 sched=fcfs sdp=1,,2\n")
                .find("line 1: empty element in sdp"),
            std::string::npos);
}

TEST(ScenarioErrors, MalformedSourceLinesNameTheirLine) {
  const char* prefix =
      "link a capacity=10 sched=fcfs sdp=1\n"
      "route r a\n";
  EXPECT_NE(parse_error(std::string(prefix) + "source renewal\n")
                .find("scenario line 3: source needs a kind and route"),
            std::string::npos);
  EXPECT_NE(parse_error(std::string(prefix) + "source teleport r class=0\n")
                .find("scenario line 3: unknown source kind teleport"),
            std::string::npos);
  EXPECT_NE(parse_error(std::string(prefix) +
                        "source renewal r class=0 gap=5 size=100 warp=9\n")
                .find("scenario line 3: unknown option warp"),
            std::string::npos);
}

TEST(ScenarioErrors, MalformedRunLinesNameTheirLine) {
  const char* prefix =
      "link a capacity=10 sched=fcfs sdp=1\n"
      "route r a\n"
      "source renewal r class=0 gap=5 size=100\n";
  EXPECT_NE(parse_error(std::string(prefix) + "run warmup=5\n")
                .find("scenario line 4: missing required option until=..."),
            std::string::npos);
  EXPECT_NE(parse_error(std::string(prefix) + "run until=10\nrun until=20\n")
                .find("scenario line 5: duplicate run directive"),
            std::string::npos);
}

TEST(ScenarioErrors, DuplicateIdsNameTheOffendingLine) {
  EXPECT_NE(parse_error("link a capacity=10 sched=fcfs sdp=1\n"
                        "link b capacity=10 sched=fcfs sdp=1\n"
                        "link a capacity=10 sched=fcfs sdp=1\n")
                .find("scenario line 3: duplicate link name a"),
            std::string::npos);
  EXPECT_NE(parse_error("link a capacity=10 sched=fcfs sdp=1\n"
                        "route r a\n"
                        "route r a\n")
                .find("scenario line 3: duplicate route name r"),
            std::string::npos);
}

TEST(ScenarioErrors, MissingSectionsProduceTheThreeDefinesNoThrows) {
  EXPECT_NE(parse_error("# empty but commented\n")
                .find("scenario defines no links"),
            std::string::npos);
  EXPECT_NE(parse_error("link a capacity=10 sched=fcfs sdp=1\n"
                        "route r a\n"
                        "source renewal r class=0 gap=5 size=100\n")
                .find("scenario has no run directive"),
            std::string::npos);
  EXPECT_NE(parse_error("link a capacity=10 sched=fcfs sdp=1\n"
                        "route r a\n"
                        "run until=10\n")
                .find("scenario defines no sources"),
            std::string::npos);
}

// ----------------------------------------------------------------- running

TEST(ScenarioRun, ExecutesAndReports) {
  const auto report = run_scenario(kValid);
  EXPECT_GT(report.total_exits, 500u);
  ASSERT_EQ(report.link_stats.size(), 2u);
  for (const auto& ls : report.link_stats) {
    EXPECT_GT(ls.utilization, 0.1);
    EXPECT_LT(ls.utilization, 1.0);
    EXPECT_GT(ls.packets_sent, 0u);
  }
  // Both the renewal class (0) and the CBR class (3) produced stats.
  bool saw0 = false, saw3 = false;
  for (const auto& rs : report.route_stats) {
    if (rs.cls == 0) saw0 = true;
    if (rs.cls == 3) saw3 = true;
    EXPECT_GE(rs.mean_delay, 0.0);
    EXPECT_GE(rs.p95_delay, 0.0);  // mostly-zero delays are legal at 37% load
  }
  EXPECT_TRUE(saw0);
  EXPECT_TRUE(saw3);
}

TEST(ScenarioRun, SeedOverrideChangesTheRun) {
  const auto a = run_scenario(kValid);
  const auto b = run_scenario(kValid, 99u);
  const auto c = run_scenario(kValid, 99u);
  EXPECT_EQ(b.total_exits, c.total_exits);  // deterministic per seed
  EXPECT_NE(a.total_exits, b.total_exits);
}

TEST(ScenarioRun, DifferentiationShowsUpInTheReport) {
  // Two classes at heavy load on one WTP link: class-1 mean delay must be
  // about half of class-0's.
  const char* scenario = R"(
link l capacity=39.375 sched=wtp sdp=1,2
route r l
source renewal r class=0 gap=23.6 size=441 pareto=1.9
source renewal r class=1 gap=23.6 size=441 pareto=1.9
run until=400000 warmup=40000 seed=5
)";
  const auto report = run_scenario(scenario);
  double d0 = 0.0, d1 = 0.0;
  for (const auto& rs : report.route_stats) {
    if (rs.cls == 0) d0 = rs.mean_delay;
    if (rs.cls == 1) d1 = rs.mean_delay;
  }
  ASSERT_GT(d0, 0.0);
  ASSERT_GT(d1, 0.0);
  EXPECT_NEAR(d0 / d1, 2.0, 0.4);
}

}  // namespace
}  // namespace pds
