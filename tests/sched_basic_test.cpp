#include <gtest/gtest.h>

#include "sched/additive.hpp"
#include "sched/factory.hpp"
#include "sched/fcfs.hpp"
#include "sched/strict_priority.hpp"
#include "test_helpers.hpp"

namespace pds {
namespace {

using testutil::packet;
using testutil::replay;
using testutil::ScriptedArrival;

SchedulerConfig config4() {
  SchedulerConfig c;
  c.sdp = {1.0, 2.0, 4.0, 8.0};
  c.link_capacity = 10.0;
  return c;
}

// ------------------------------------------------------------ validation

TEST(SchedulerConfig, RejectsEmptySdp) {
  SchedulerConfig c;
  EXPECT_THROW(c.validate(), std::invalid_argument);
}

TEST(SchedulerConfig, RejectsDecreasingSdp) {
  SchedulerConfig c;
  c.sdp = {2.0, 1.0};
  EXPECT_THROW(c.validate(), std::invalid_argument);
}

TEST(SchedulerConfig, RejectsNonPositiveSdp) {
  SchedulerConfig c;
  c.sdp = {0.0, 1.0};
  EXPECT_THROW(c.validate(), std::invalid_argument);
}

TEST(SchedulerConfig, CapacityOnlyRequiredWhenRequested) {
  SchedulerConfig c;
  c.sdp = {1.0, 2.0};
  EXPECT_NO_THROW(c.validate(false));
  EXPECT_THROW(c.validate(true), std::invalid_argument);
}

TEST(SchedulerConfig, RejectsBadHpdG) {
  SchedulerConfig c;
  c.sdp = {1.0};
  c.hpd_g = 1.5;
  EXPECT_THROW(c.validate(), std::invalid_argument);
}

TEST(SchedulerConfig, RejectsNonPositiveHpdG) {
  SchedulerConfig c;
  c.sdp = {1.0};
  c.hpd_g = 0.0;
  EXPECT_THROW(c.validate(), std::invalid_argument);
  c.hpd_g = -0.5;
  EXPECT_THROW(c.validate(), std::invalid_argument);
  c.hpd_g = 1e-9;  // vanishing but positive is still legal
  EXPECT_NO_THROW(c.validate());
}

TEST(SchedulerConfig, RejectsNonPositiveDrrQuantum) {
  SchedulerConfig c;
  c.sdp = {1.0};
  c.drr_quantum_bytes = 0.0;
  EXPECT_THROW(c.validate(), std::invalid_argument);
  c.drr_quantum_bytes = -100.0;
  EXPECT_THROW(c.validate(), std::invalid_argument);
}

// --------------------------------------------------------------- factory

TEST(Factory, RoundTripsAllNames) {
  for (const auto kind :
       {SchedulerKind::kFcfs, SchedulerKind::kStrictPriority,
        SchedulerKind::kWtp, SchedulerKind::kBpr, SchedulerKind::kAdditiveWtp,
        SchedulerKind::kPad, SchedulerKind::kHpd, SchedulerKind::kDrr,
        SchedulerKind::kScfq, SchedulerKind::kVirtualClock}) {
    EXPECT_EQ(scheduler_kind_from_string(to_string(kind)), kind);
  }
  EXPECT_THROW(scheduler_kind_from_string("nope"), std::invalid_argument);
}

TEST(Factory, BuildsEveryKindWithMatchingName) {
  const auto c = config4();
  for (const auto& [kind, name] :
       std::vector<std::pair<SchedulerKind, std::string_view>>{
           {SchedulerKind::kFcfs, "FCFS"},
           {SchedulerKind::kStrictPriority, "SP"},
           {SchedulerKind::kWtp, "WTP"},
           {SchedulerKind::kBpr, "BPR"},
           {SchedulerKind::kAdditiveWtp, "ADD"},
           {SchedulerKind::kPad, "PAD"},
           {SchedulerKind::kHpd, "HPD"},
           {SchedulerKind::kDrr, "DRR"},
           {SchedulerKind::kScfq, "SCFQ"},
           {SchedulerKind::kVirtualClock, "VC"}}) {
    const auto s = make_scheduler(kind, c);
    EXPECT_EQ(s->name(), name);
    EXPECT_EQ(s->num_classes(), 4u);
    EXPECT_TRUE(s->empty());
  }
}

// ------------------------------------------------------------------ FCFS

TEST(Fcfs, ServesAcrossClassesInArrivalOrder) {
  FcfsScheduler fcfs(3);
  fcfs.enqueue(packet(1, 2, 100, 0.0), 0.0);
  fcfs.enqueue(packet(2, 0, 100, 1.0), 1.0);
  fcfs.enqueue(packet(3, 1, 100, 2.0), 2.0);
  EXPECT_EQ(fcfs.dequeue(3.0)->id, 1u);
  EXPECT_EQ(fcfs.dequeue(3.0)->id, 2u);
  EXPECT_EQ(fcfs.dequeue(3.0)->id, 3u);
  EXPECT_FALSE(fcfs.dequeue(3.0).has_value());
}

TEST(Fcfs, ReportsPerClassBacklog) {
  FcfsScheduler fcfs(2);
  fcfs.enqueue(packet(1, 0, 100, 0.0), 0.0);
  fcfs.enqueue(packet(2, 1, 250, 0.0), 0.0);
  fcfs.enqueue(packet(3, 1, 50, 0.0), 0.0);
  EXPECT_EQ(fcfs.backlog_packets(0), 1u);
  EXPECT_EQ(fcfs.backlog_packets(1), 2u);
  EXPECT_EQ(fcfs.backlog_bytes(1), 300u);
  fcfs.dequeue(1.0);
  EXPECT_EQ(fcfs.backlog_packets(0), 0u);
}

TEST(Fcfs, DropTailUnsupported) {
  FcfsScheduler fcfs(2);
  fcfs.enqueue(packet(1, 0, 100, 0.0), 0.0);
  EXPECT_FALSE(fcfs.drop_tail(0).has_value());
}

TEST(Fcfs, RejectsFutureArrivalStamp) {
  FcfsScheduler fcfs(1);
  EXPECT_THROW(fcfs.enqueue(packet(1, 0, 10, 5.0), 1.0),
               std::invalid_argument);
}

// -------------------------------------------------------- strict priority

TEST(StrictPriority, AlwaysServesHighestBackloggedClass) {
  StrictPriorityScheduler sp(config4());
  sp.enqueue(packet(1, 0, 100, 0.0), 0.0);
  sp.enqueue(packet(2, 3, 100, 0.0), 0.0);
  sp.enqueue(packet(3, 1, 100, 0.0), 0.0);
  EXPECT_EQ(sp.dequeue(1.0)->cls, 3u);
  EXPECT_EQ(sp.dequeue(1.0)->cls, 1u);
  EXPECT_EQ(sp.dequeue(1.0)->cls, 0u);
}

TEST(StrictPriority, FifoWithinClass) {
  StrictPriorityScheduler sp(config4());
  sp.enqueue(packet(1, 2, 100, 0.0), 0.0);
  sp.enqueue(packet(2, 2, 100, 1.0), 1.0);
  EXPECT_EQ(sp.dequeue(2.0)->id, 1u);
  EXPECT_EQ(sp.dequeue(2.0)->id, 2u);
}

TEST(StrictPriority, LowClassStarvesUnderHighLoad) {
  // Continuous class-1 arrivals keep class-0's lone packet waiting for the
  // whole script — the starvation problem Section 2.1 attributes to strict
  // prioritization.
  StrictPriorityScheduler sp(config4());
  std::vector<ScriptedArrival> script;
  // Class-1 packets arrive back-to-back with the service rate (tx time = 10
  // at capacity 10); the class-0 victim arrives at 0.5, mid-transmission.
  script.push_back({0.5, 0, 100});
  for (int i = 0; i < 50; ++i) {
    script.push_back({i * 10.0, 1, 100});
  }
  const auto out = replay(sp, 10.0, script);
  ASSERT_EQ(out.size(), 51u);
  EXPECT_EQ(out.back().cls, 0u);  // victim leaves last
}

// ---------------------------------------------------------- additive WTP

TEST(AdditiveWtp, HeadStartWinsWhenWaitsAreEqual) {
  SchedulerConfig c;
  c.sdp = {1.0, 5.0};
  AdditiveWtpScheduler add(c);
  add.enqueue(packet(1, 0, 100, 0.0), 0.0);
  add.enqueue(packet(2, 1, 100, 0.0), 0.0);
  // Priorities: w + s = 10+1 vs 10+5.
  EXPECT_EQ(add.dequeue(10.0)->cls, 1u);
}

TEST(AdditiveWtp, SufficientExtraWaitOvercomesHeadStart) {
  SchedulerConfig c;
  c.sdp = {1.0, 5.0};
  AdditiveWtpScheduler add(c);
  add.enqueue(packet(1, 0, 100, 0.0), 0.0);
  add.enqueue(packet(2, 1, 100, 4.5), 4.5);
  // At t=10: class0 priority 10+1 = 11, class1 priority 5.5+5 = 10.5.
  EXPECT_EQ(add.dequeue(10.0)->cls, 0u);
}

TEST(AdditiveWtp, TieGoesToHigherClass) {
  SchedulerConfig c;
  c.sdp = {1.0, 5.0};
  AdditiveWtpScheduler add(c);
  add.enqueue(packet(1, 0, 100, 0.0), 0.0);
  add.enqueue(packet(2, 1, 100, 4.0), 4.0);
  // At t=10: 10+1 == 6+5.
  EXPECT_EQ(add.dequeue(10.0)->cls, 1u);
}

// --------------------------------------------------------- drop_tail base

TEST(ClassBased, DropTailRemovesNewestOfClass) {
  StrictPriorityScheduler sp(config4());
  sp.enqueue(packet(1, 1, 100, 0.0), 0.0);
  sp.enqueue(packet(2, 1, 200, 1.0), 1.0);
  const auto dropped = sp.drop_tail(1);
  ASSERT_TRUE(dropped.has_value());
  EXPECT_EQ(dropped->id, 2u);
  EXPECT_EQ(sp.backlog_packets(1), 1u);
}

TEST(ClassBased, DropTailOnEmptyClassReturnsNullopt) {
  StrictPriorityScheduler sp(config4());
  EXPECT_FALSE(sp.drop_tail(2).has_value());
  EXPECT_THROW(sp.drop_tail(9), std::invalid_argument);
}

}  // namespace
}  // namespace pds
