// Property-style invariants that must hold for EVERY scheduler in the
// library, across traffic seeds and load mixes:
//   1. Losslessness: every arrival eventually departs.
//   2. Per-class FIFO: packets of one class depart in arrival order.
//   3. Work conservation: the link is never idle while packets are queued,
//      i.e. total busy time == total bytes / capacity AND the busy period
//      structure matches a FCFS replay of the same arrivals.
//   4. Conservation law (Eq. 5): with equal packet sizes, the *sum* of all
//      queueing delays is invariant across work-conserving schedulers,
//      because the aggregate departure instants do not depend on the
//      scheduling order.
//   5. No negative waits; non-decreasing departure times.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>

#include "rng/distributions.hpp"
#include "rng/rng.hpp"
#include "sched/factory.hpp"
#include "test_helpers.hpp"

namespace pds {
namespace {

using testutil::replay;
using testutil::ScriptedArrival;

constexpr double kCapacity = 39.375;  // Study A normalization

struct Case {
  SchedulerKind kind;
  std::uint64_t seed;
  bool equal_sizes;
};

std::string case_name(const testing::TestParamInfo<Case>& info) {
  return to_string(info.param.kind) + "_seed" +
         std::to_string(info.param.seed) +
         (info.param.equal_sizes ? "_eq" : "_mix");
}

// Bursty 4-class arrival script at ~95% utilization.
std::vector<ScriptedArrival> make_script(std::uint64_t seed,
                                         bool equal_sizes, int count) {
  Rng rng(seed);
  const ParetoDist gaps = ParetoDist::with_mean(1.9, 11.2 / 0.95 / 0.25);
  const DiscreteDist sizes({{40.0, 0.4}, {550.0, 0.5}, {1500.0, 0.1}});
  std::vector<ScriptedArrival> script;
  std::vector<double> clock(4, 0.0);
  for (int i = 0; i < count; ++i) {
    const auto cls = static_cast<ClassId>(rng.uniform_index(4));
    clock[cls] += gaps.sample(rng);
    const auto bytes =
        equal_sizes ? 441u
                    : static_cast<std::uint32_t>(sizes.sample(rng));
    script.push_back({clock[cls], cls, bytes});
  }
  std::sort(script.begin(), script.end(),
            [](const ScriptedArrival& a, const ScriptedArrival& b) {
              return a.time < b.time;
            });
  return script;
}

class SchedulerInvariants : public testing::TestWithParam<Case> {};

SchedulerConfig make_config() {
  SchedulerConfig c;
  c.sdp = {1.0, 2.0, 4.0, 8.0};
  c.link_capacity = kCapacity;
  return c;
}

TEST_P(SchedulerInvariants, LosslessAndFifoWithinClass) {
  const auto& param = GetParam();
  const auto script = make_script(param.seed, param.equal_sizes, 2000);
  auto sched = make_scheduler(param.kind, make_config());
  const auto out = replay(*sched, kCapacity, script);

  ASSERT_EQ(out.size(), script.size()) << "packets lost or duplicated";

  // Per-class FIFO: departure order of ids within one class must be the
  // arrival order. Ids are script positions and the script is time-sorted,
  // so within a class ids are arrival-ordered.
  std::map<ClassId, std::uint64_t> last_id;
  double prev_completion = 0.0;
  for (const auto& d : out) {
    EXPECT_GE(d.wait, 0.0);
    EXPECT_GE(d.completed, prev_completion);
    prev_completion = d.completed;
    const auto it = last_id.find(d.cls);
    if (it != last_id.end()) {
      EXPECT_GT(d.id, it->second) << "class " << d.cls << " reordered";
    }
    last_id[d.cls] = d.id;
  }
}

TEST_P(SchedulerInvariants, WorkConservingBusyPeriods) {
  const auto& param = GetParam();
  const auto script = make_script(param.seed, param.equal_sizes, 2000);
  auto sched = make_scheduler(param.kind, make_config());
  const auto out = replay(*sched, kCapacity, script);
  ASSERT_EQ(out.size(), script.size());

  // A work-conserving server's aggregate departure completion times are a
  // deterministic function of the arrival times and the *multiset* of
  // sizes served in each busy period. With equal sizes they must match a
  // FCFS replay of the same arrivals exactly, packet for packet.
  if (!param.equal_sizes) return;
  auto fcfs = make_scheduler(SchedulerKind::kFcfs, make_config());
  const auto ref = replay(*fcfs, kCapacity, script);
  ASSERT_EQ(ref.size(), out.size());
  for (std::size_t i = 0; i < out.size(); ++i) {
    EXPECT_NEAR(out[i].completed, ref[i].completed, 1e-6)
        << "departure " << i << " deviates from the FCFS busy structure";
  }
}

TEST_P(SchedulerInvariants, DeterministicReplay) {
  // Identical scripts through two fresh scheduler instances must produce
  // byte-identical departure sequences — the reproducibility contract the
  // seed-averaged experiments rely on.
  const auto& param = GetParam();
  const auto script = make_script(param.seed, param.equal_sizes, 1000);
  auto a = make_scheduler(param.kind, make_config());
  auto b = make_scheduler(param.kind, make_config());
  const auto out_a = replay(*a, kCapacity, script);
  const auto out_b = replay(*b, kCapacity, script);
  ASSERT_EQ(out_a.size(), out_b.size());
  for (std::size_t i = 0; i < out_a.size(); ++i) {
    EXPECT_EQ(out_a[i].id, out_b[i].id);
    EXPECT_DOUBLE_EQ(out_a[i].completed, out_b[i].completed);
  }
}

TEST_P(SchedulerInvariants, ConservationLawWithEqualSizes) {
  const auto& param = GetParam();
  if (!param.equal_sizes) return;
  const auto script = make_script(param.seed, true, 2000);
  auto sched = make_scheduler(param.kind, make_config());
  auto fcfs = make_scheduler(SchedulerKind::kFcfs, make_config());
  const auto out = replay(*sched, kCapacity, script);
  const auto ref = replay(*fcfs, kCapacity, script);
  double total = 0.0, total_ref = 0.0;
  for (const auto& d : out) total += d.wait;
  for (const auto& d : ref) total_ref += d.wait;
  // Eq. 5: sum of waits is scheduler-invariant when sizes are equal.
  EXPECT_NEAR(total, total_ref, 1e-6 * std::max(1.0, total_ref));
}

INSTANTIATE_TEST_SUITE_P(
    AllSchedulers, SchedulerInvariants,
    testing::ValuesIn([] {
      std::vector<Case> cases;
      for (const auto kind :
           {SchedulerKind::kFcfs, SchedulerKind::kStrictPriority,
            SchedulerKind::kWtp, SchedulerKind::kBpr,
            SchedulerKind::kAdditiveWtp, SchedulerKind::kPad,
            SchedulerKind::kHpd, SchedulerKind::kDrr, SchedulerKind::kScfq,
            SchedulerKind::kVirtualClock}) {
        for (const std::uint64_t seed : {1ULL, 2ULL, 3ULL}) {
          cases.push_back({kind, seed, true});
          cases.push_back({kind, seed, false});
        }
      }
      return cases;
    }()),
    case_name);

}  // namespace
}  // namespace pds
