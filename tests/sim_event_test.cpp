// Unit tests for SimEvent, the kernel's move-only small-buffer callable.
#include "dsim/sim_event.hpp"

#include <array>
#include <cstddef>
#include <memory>
#include <utility>

#include <gtest/gtest.h>

#include "dsim/simulator.hpp"

namespace pds {
namespace {

TEST(SimEvent, DefaultConstructedIsEmpty) {
  SimEvent ev;
  EXPECT_FALSE(static_cast<bool>(ev));
  EXPECT_EQ(ev.label(), nullptr);
}

TEST(SimEvent, InvokesStoredCallable) {
  int calls = 0;
  SimEvent ev([&calls] { ++calls; });
  ASSERT_TRUE(static_cast<bool>(ev));
  ev();
  ev();
  EXPECT_EQ(calls, 2);
}

TEST(SimEvent, HotPathCapturesStoreInline) {
  // The shapes the refactor cares about: a bare `this`-style pointer, a
  // moved-through shared_ptr, and a pointer plus a few scalars.
  void* self = nullptr;
  auto link_style = [self] { (void)self; };
  EXPECT_TRUE(SimEvent::stores_inline<decltype(link_style)>());

  auto sp = std::make_shared<int>(7);
  auto source_style = [sp = std::move(sp)]() mutable { (void)sp; };
  EXPECT_TRUE(SimEvent::stores_inline<decltype(source_style)>());

  double a = 0.0, b = 0.0;
  auto mixed = [self, a, b] { (void)self; (void)a; (void)b; };
  EXPECT_TRUE(SimEvent::stores_inline<decltype(mixed)>());
}

TEST(SimEvent, OversizedCapturesFallBackToHeapAndStillRun) {
  std::array<double, 16> big{};  // 128 bytes > kInlineCapacity
  big[3] = 42.0;
  auto fn = [big]() { EXPECT_EQ(big[3], 42.0); };
  EXPECT_FALSE(SimEvent::stores_inline<decltype(fn)>());
  SimEvent ev(std::move(fn));
  ASSERT_TRUE(static_cast<bool>(ev));
  ev();
}

TEST(SimEvent, MoveTransfersOwnershipAndEmptiesSource) {
  int calls = 0;
  SimEvent a([&calls] { ++calls; }, "x");
  SimEvent b(std::move(a));
  EXPECT_FALSE(static_cast<bool>(a));  // NOLINT(bugprone-use-after-move)
  ASSERT_TRUE(static_cast<bool>(b));
  EXPECT_STREQ(b.label(), "x");
  b();
  EXPECT_EQ(calls, 1);

  SimEvent c;
  c = std::move(b);
  ASSERT_TRUE(static_cast<bool>(c));
  c();
  EXPECT_EQ(calls, 2);
}

TEST(SimEvent, MoveAssignDestroysPreviousCallable) {
  auto token = std::make_shared<int>(1);
  std::weak_ptr<int> alive = token;
  SimEvent a([token = std::move(token)]() mutable { (void)token; });
  EXPECT_FALSE(alive.expired());
  a = SimEvent([] {});
  EXPECT_TRUE(alive.expired());
}

TEST(SimEvent, DestructorReleasesMoveOnlyCapture) {
  auto token = std::make_shared<int>(1);
  std::weak_ptr<int> alive = token;
  {
    SimEvent ev([token = std::move(token)]() mutable { (void)token; });
    EXPECT_FALSE(alive.expired());
  }
  EXPECT_TRUE(alive.expired());
}

TEST(SimEvent, HeapFallbackReleasesCaptureOnDestruction) {
  auto token = std::make_shared<int>(1);
  std::weak_ptr<int> alive = token;
  std::array<double, 16> pad{};
  {
    SimEvent ev([token = std::move(token), pad]() mutable {
      (void)token;
      (void)pad;
    });
    EXPECT_FALSE(alive.expired());
  }
  EXPECT_TRUE(alive.expired());
}

TEST(SimEvent, LabelRoundTrips) {
  SimEvent ev([] {}, "link.tx");
  EXPECT_STREQ(ev.label(), "link.tx");
  ev.set_label("other");
  EXPECT_STREQ(ev.label(), "other");
}

TEST(SimEvent, StaysOneCacheLine) {
  EXPECT_EQ(sizeof(SimEvent), 64u);
}

TEST(SimEvent, SimulatorActionIsSimEvent) {
  // The kernel's Action alias is the SimEvent itself — scheduling a lambda
  // with an inline-sized capture must not depend on std::function.
  static_assert(std::is_same_v<Simulator::Action, SimEvent>);
  Simulator sim;
  int fired = 0;
  sim.schedule_at(1.0, SimEvent([&fired] { ++fired; }, "test"));
  sim.run();
  EXPECT_EQ(fired, 1);
}

}  // namespace
}  // namespace pds
