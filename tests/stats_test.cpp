#include <gtest/gtest.h>

#include <cmath>

#include "stats/delay_stats.hpp"
#include "stats/interval_monitor.hpp"
#include "stats/percentile.hpp"
#include "stats/running_stats.hpp"
#include "stats/sawtooth.hpp"

namespace pds {
namespace {

// --------------------------------------------------------- RunningStats

TEST(RunningStats, BasicMoments) {
  RunningStats s;
  for (const double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.variance(), 4.0);
  EXPECT_DOUBLE_EQ(s.stddev(), 2.0);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(RunningStats, EmptyAccessThrows) {
  RunningStats s;
  EXPECT_THROW(s.mean(), std::invalid_argument);
  EXPECT_THROW(s.variance(), std::invalid_argument);
  EXPECT_THROW(s.min(), std::invalid_argument);
}

TEST(RunningStats, MergeMatchesPooledComputation) {
  RunningStats a, b, pooled;
  for (int i = 0; i < 50; ++i) {
    const double x = std::sin(i * 0.7) * 10.0;
    (i % 2 ? a : b).add(x);
    pooled.add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), pooled.count());
  EXPECT_NEAR(a.mean(), pooled.mean(), 1e-12);
  EXPECT_NEAR(a.variance(), pooled.variance(), 1e-10);
  EXPECT_DOUBLE_EQ(a.min(), pooled.min());
  EXPECT_DOUBLE_EQ(a.max(), pooled.max());
}

TEST(RunningStats, MergeWithEmptySides) {
  RunningStats a, empty;
  a.add(3.0);
  a.merge(empty);
  EXPECT_EQ(a.count(), 1u);
  RunningStats c;
  c.merge(a);
  EXPECT_DOUBLE_EQ(c.mean(), 3.0);
}

// ----------------------------------------------------------- percentile

TEST(Percentile, MatchesHandComputedValues) {
  const std::vector<double> v{1, 2, 3, 4, 5, 6, 7, 8, 9, 10};
  EXPECT_DOUBLE_EQ(percentile(v, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(percentile(v, 100.0), 10.0);
  EXPECT_DOUBLE_EQ(percentile(v, 50.0), 5.5);
  EXPECT_DOUBLE_EQ(percentile(v, 25.0), 3.25);
}

TEST(Percentile, UnsortedInputIsSortedInternally) {
  EXPECT_DOUBLE_EQ(percentile({5.0, 1.0, 3.0}, 50.0), 3.0);
}

TEST(Percentile, SingleSample) {
  EXPECT_DOUBLE_EQ(percentile({42.0}, 10.0), 42.0);
  EXPECT_DOUBLE_EQ(percentile({42.0}, 99.0), 42.0);
}

TEST(Percentile, RejectsBadInput) {
  EXPECT_THROW(percentile({}, 50.0), std::invalid_argument);
  EXPECT_THROW(percentile({1.0}, 101.0), std::invalid_argument);
  EXPECT_THROW(percentile({1.0}, -1.0), std::invalid_argument);
}

TEST(SampleSet, AccumulatesAndSummarizes) {
  SampleSet s;
  for (double x = 1.0; x <= 5.0; x += 1.0) s.add(x);
  EXPECT_EQ(s.count(), 5u);
  EXPECT_DOUBLE_EQ(s.mean(), 3.0);
  EXPECT_DOUBLE_EQ(s.percentile(50.0), 3.0);
  const auto ps = s.percentiles({0.0, 100.0});
  EXPECT_DOUBLE_EQ(ps[0], 1.0);
  EXPECT_DOUBLE_EQ(ps[1], 5.0);
}

// --------------------------------------------------------- ClassDelayStats

TEST(ClassDelayStats, RecordsPerClassAfterWarmup) {
  ClassDelayStats stats(2, 10.0);
  stats.record(0, 99.0, 5.0);   // warmup: ignored
  stats.record(0, 4.0, 11.0);
  stats.record(0, 6.0, 12.0);
  stats.record(1, 2.0, 13.0);
  EXPECT_EQ(stats.of(0).count(), 2u);
  EXPECT_DOUBLE_EQ(stats.of(0).mean(), 5.0);
  const auto means = stats.means();
  EXPECT_DOUBLE_EQ(means[1], 2.0);
  const auto ratios = stats.successive_ratios();
  ASSERT_EQ(ratios.size(), 1u);
  EXPECT_DOUBLE_EQ(ratios[0], 2.5);
}

TEST(ClassDelayStats, RejectsBadRecords) {
  ClassDelayStats stats(2, 0.0);
  EXPECT_THROW(stats.record(5, 1.0, 1.0), std::invalid_argument);
  EXPECT_THROW(stats.record(0, -1.0, 1.0), std::invalid_argument);
}

// ------------------------------------------------------------ interval_rd

TEST(IntervalRd, AllActiveAveragesAdjacentRatios) {
  double rd = 0.0;
  ASSERT_TRUE(interval_rd({8.0, 4.0, 2.0, 1.0},
                          {true, true, true, true}, &rd));
  EXPECT_DOUBLE_EQ(rd, 2.0);
}

TEST(IntervalRd, InactiveClassUsesGeometricNormalization) {
  // Classes 0 and 2 active with ratio 4 across a gap of 2 -> per-step 2.
  double rd = 0.0;
  ASSERT_TRUE(interval_rd({8.0, 0.0, 2.0, 0.0},
                          {true, false, true, false}, &rd));
  EXPECT_DOUBLE_EQ(rd, 2.0);
}

TEST(IntervalRd, MixedGapsAverageCorrectly) {
  // Pairs: (0,1) ratio 3; (1,3) ratio 9 over gap 2 -> 3. Mean = 3.
  double rd = 0.0;
  ASSERT_TRUE(interval_rd({9.0, 3.0, 0.0, 1.0 / 3.0},
                          {true, true, false, true}, &rd));
  EXPECT_NEAR(rd, 3.0, 1e-12);
}

TEST(IntervalRd, UndefinedWithFewerThanTwoActive) {
  double rd = 0.0;
  EXPECT_FALSE(interval_rd({1.0, 0.0}, {true, false}, &rd));
  EXPECT_FALSE(interval_rd({0.0, 0.0}, {false, false}, &rd));
}

TEST(IntervalRd, ZeroActiveMeanIsUndefined) {
  double rd = 0.0;
  EXPECT_FALSE(interval_rd({1.0, 0.0}, {true, true}, &rd));
}

// --------------------------------------------------- IntervalDelayMonitor

TEST(IntervalMonitor, BucketsByDepartureTime) {
  IntervalDelayMonitor mon(2, 10.0, 0.0);
  // Interval [0,10): ratio 4/2 = 2. Interval [10,20): ratio 9/3 = 3.
  mon.record(0, 4.0, 1.0);
  mon.record(1, 2.0, 2.0);
  mon.record(0, 9.0, 12.0);
  mon.record(1, 3.0, 15.0);
  mon.finish();
  const auto& rds = mon.rd_values();
  ASSERT_EQ(rds.size(), 2u);
  EXPECT_DOUBLE_EQ(rds[0], 2.0);
  EXPECT_DOUBLE_EQ(rds[1], 3.0);
}

TEST(IntervalMonitor, SkipsEmptyIntervalsAndCountsUndefined) {
  IntervalDelayMonitor mon(2, 10.0, 0.0);
  mon.record(0, 4.0, 1.0);   // interval 0: only class 0 -> undefined
  mon.record(0, 5.0, 55.0);  // intervals 1-4 empty; interval 5 undefined
  mon.record(1, 5.0, 57.0);
  mon.finish();
  EXPECT_EQ(mon.rd_values().size(), 1u);  // interval 5 has both classes
  EXPECT_EQ(mon.undefined_intervals(), 1u);
  EXPECT_EQ(mon.intervals_seen(), 2u);
}

TEST(IntervalMonitor, HonorsWarmupStart) {
  IntervalDelayMonitor mon(2, 10.0, 100.0);
  mon.record(0, 4.0, 50.0);  // before start: dropped
  mon.record(0, 4.0, 101.0);
  mon.record(1, 2.0, 102.0);
  mon.finish();
  ASSERT_EQ(mon.rd_values().size(), 1u);
  EXPECT_DOUBLE_EQ(mon.rd_values()[0], 2.0);
}

TEST(IntervalMonitor, AveragesWithinBucket) {
  IntervalDelayMonitor mon(2, 10.0, 0.0);
  mon.record(0, 2.0, 1.0);
  mon.record(0, 6.0, 2.0);   // class-0 mean 4
  mon.record(1, 1.0, 3.0);
  mon.record(1, 3.0, 4.0);   // class-1 mean 2
  mon.finish();
  ASSERT_EQ(mon.rd_values().size(), 1u);
  EXPECT_DOUBLE_EQ(mon.rd_values()[0], 2.0);
}

TEST(IntervalMonitor, RequiresTwoClassesAndPositiveTau) {
  EXPECT_THROW(IntervalDelayMonitor(1, 10.0, 0.0), std::invalid_argument);
  EXPECT_THROW(IntervalDelayMonitor(2, 0.0, 0.0), std::invalid_argument);
}

// --------------------------------------------------------- SawtoothIndex

TEST(Sawtooth, SmoothSequenceScoresLow) {
  SawtoothIndex s(1);
  for (int i = 0; i < 100; ++i) s.record(0, 50.0 + (i % 2));
  // Total variation 1 per step against a mean of ~50.5.
  EXPECT_LT(s.index(0), 0.03);
  EXPECT_EQ(s.collapses(0), 0u);
}

TEST(Sawtooth, RampAndResetScoresHighAndCountsCollapses) {
  SawtoothIndex s(1);
  for (int cycle = 0; cycle < 10; ++cycle) {
    for (int i = 0; i <= 10; ++i) s.record(0, 10.0 * i);  // ramp to 100
    // next cycle restarts at 0 -> collapse of 100 > half the mean (~50)
  }
  EXPECT_GT(s.index(0), 0.3);
  EXPECT_GE(s.collapses(0), 9u);
}

TEST(Sawtooth, PerClassIsolationAndOverall) {
  SawtoothIndex s(2);
  for (int i = 0; i < 50; ++i) s.record(0, 10.0);
  for (int i = 0; i < 50; ++i) s.record(1, (i % 2) ? 100.0 : 0.0);
  EXPECT_DOUBLE_EQ(s.index(0), 0.0);
  EXPECT_GT(s.index(1), 0.5);
  EXPECT_GT(s.overall(), s.index(0));
  EXPECT_EQ(s.total_collapses(), s.collapses(1));
}

TEST(Sawtooth, FewSamplesScoreZero) {
  SawtoothIndex s(1);
  EXPECT_DOUBLE_EQ(s.index(0), 0.0);
  s.record(0, 5.0);
  EXPECT_DOUBLE_EQ(s.index(0), 0.0);
}

}  // namespace
}  // namespace pds
