#include <gtest/gtest.h>

#include "core/study_a.hpp"

namespace pds {
namespace {

StudyAConfig quick_config() {
  StudyAConfig c;
  c.sim_time = 5.0e4;
  c.seed = 7;
  return c;
}

TEST(StudyA, ProducesDeparturesInEveryClass) {
  const auto r = run_study_a(quick_config());
  ASSERT_EQ(r.mean_delays.size(), 4u);
  ASSERT_EQ(r.departures.size(), 4u);
  for (const auto n : r.departures) EXPECT_GT(n, 50u);
  for (const auto d : r.mean_delays) EXPECT_GT(d, 0.0);
  EXPECT_EQ(r.ratios.size(), 3u);
}

TEST(StudyA, MeasuredUtilizationTracksTarget) {
  auto c = quick_config();
  c.utilization = 0.8;
  c.sim_time = 2.0e5;
  const auto r = run_study_a(c);
  EXPECT_NEAR(r.measured_utilization, 0.8, 0.1);
}

TEST(StudyA, LoadFractionsShapeClassThroughput) {
  auto c = quick_config();
  c.sim_time = 2.0e5;
  const auto r = run_study_a(c);
  const double total = static_cast<double>(
      r.departures[0] + r.departures[1] + r.departures[2] + r.departures[3]);
  EXPECT_NEAR(static_cast<double>(r.departures[0]) / total, 0.4, 0.05);
  EXPECT_NEAR(static_cast<double>(r.departures[3]) / total, 0.1, 0.05);
}

TEST(StudyA, IsDeterministicPerSeed) {
  const auto a = run_study_a(quick_config());
  const auto b = run_study_a(quick_config());
  ASSERT_EQ(a.total_departures, b.total_departures);
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_DOUBLE_EQ(a.mean_delays[i], b.mean_delays[i]);
  }
  auto c = quick_config();
  c.seed = 8;
  const auto other = run_study_a(c);
  EXPECT_NE(a.total_departures, other.total_departures);
}

TEST(StudyA, MonitorsProduceRdSeriesPerTau) {
  auto c = quick_config();
  c.monitor_taus = {10.0 * kPUnit, 1000.0 * kPUnit};
  const auto r = run_study_a(c);
  ASSERT_EQ(r.rd_per_tau.size(), 2u);
  EXPECT_GT(r.rd_per_tau[0].size(), r.rd_per_tau[1].size());
  EXPECT_FALSE(r.rd_per_tau[1].empty());
}

TEST(StudyA, TraceIsTimeOrderedAndMatchesDepartureVolume) {
  auto c = quick_config();
  c.record_trace = true;
  const auto r = run_study_a(c);
  ASSERT_FALSE(r.trace.empty());
  for (std::size_t i = 1; i < r.trace.size(); ++i) {
    EXPECT_GE(r.trace[i].time, r.trace[i - 1].time);
  }
  // Departures (post-warmup) cannot exceed arrivals.
  EXPECT_LE(r.total_departures, r.trace.size());
}

TEST(StudyA, PerPacketRecordsOnlyWhenRequested) {
  auto c = quick_config();
  const auto without = run_study_a(c);
  EXPECT_TRUE(without.per_packet.empty());
  c.record_departures = true;
  const auto with = run_study_a(c);
  EXPECT_EQ(with.per_packet.size(), with.total_departures);
  for (std::size_t i = 1; i < with.per_packet.size(); ++i) {
    EXPECT_GE(with.per_packet[i].time, with.per_packet[i - 1].time);
  }
}

TEST(StudyA, WarmupShrinksTheSample) {
  auto c = quick_config();
  c.warmup_fraction = 0.0;
  const auto full = run_study_a(c);
  c.warmup_fraction = 0.5;
  const auto half = run_study_a(c);
  EXPECT_LT(half.total_departures, full.total_departures);
}

TEST(StudyA, AverageRatiosOverSeedsUsesDistinctSeeds) {
  auto c = quick_config();
  c.sim_time = 2.0e4;
  const auto avg = average_ratios_over_seeds(c, 3);
  ASSERT_EQ(avg.size(), 3u);
  for (const double r : avg) EXPECT_GT(r, 0.0);
}

TEST(StudyA, ValidatesConfig) {
  auto c = quick_config();
  c.utilization = 1.5;
  EXPECT_THROW(run_study_a(c), std::invalid_argument);
  c = quick_config();
  c.load_fractions = {1.0};
  EXPECT_THROW(run_study_a(c), std::invalid_argument);
  c = quick_config();
  c.warmup_fraction = 1.0;
  EXPECT_THROW(run_study_a(c), std::invalid_argument);
  c = quick_config();
  c.monitor_taus = {0.0};
  EXPECT_THROW(run_study_a(c), std::invalid_argument);
}

TEST(StudyA, PoissonArrivalModelRuns) {
  auto c = quick_config();
  c.arrivals = ArrivalModel::kPoisson;
  c.sim_time = 1.0e5;
  const auto r = run_study_a(c);
  EXPECT_GT(r.total_departures, 1000u);
  // Poisson traffic is markedly less bursty: same seed and load, both
  // models still deliver ordered class delays.
  for (std::size_t i = 0; i + 1 < 4; ++i) {
    EXPECT_GT(r.mean_delays[i], r.mean_delays[i + 1]);
  }
}

TEST(StudyA, ReportedPercentilesAreOrdered) {
  auto c = quick_config();
  c.report_percentiles = {50.0, 95.0, 99.0};
  const auto r = run_study_a(c);
  ASSERT_EQ(r.delay_percentiles.size(), 4u);
  for (ClassId cls = 0; cls < 4; ++cls) {
    ASSERT_EQ(r.delay_percentiles[cls].size(), 3u);
    EXPECT_LE(r.delay_percentiles[cls][0], r.delay_percentiles[cls][1]);
    EXPECT_LE(r.delay_percentiles[cls][1], r.delay_percentiles[cls][2]);
    // The median cannot exceed... the mean can sit either side of the
    // median for skewed delays, but p99 must dominate the mean.
    EXPECT_GE(r.delay_percentiles[cls][2], r.mean_delays[cls]);
  }
  // Percentile-level differentiation: the p95 of a higher class stays
  // below the p95 of the class beneath it.
  for (ClassId cls = 0; cls + 1 < 4; ++cls) {
    EXPECT_GT(r.delay_percentiles[cls][1],
              r.delay_percentiles[cls + 1][1]);
  }
}

TEST(StudyA, PercentilesOffByDefault) {
  const auto r = run_study_a(quick_config());
  EXPECT_TRUE(r.delay_percentiles.empty());
}

TEST(StudyA, RejectsBadPercentiles) {
  auto c = quick_config();
  c.report_percentiles = {101.0};
  EXPECT_THROW(run_study_a(c), std::invalid_argument);
}

TEST(StudyA, CalendarKernelMatchesHeapExactly) {
  // System-level differential test of the two pending-event sets: the
  // whole Study A pipeline must be bit-identical under either kernel.
  auto c = quick_config();
  c.event_queue = EventQueueKind::kBinaryHeap;
  const auto heap = run_study_a(c);
  c.event_queue = EventQueueKind::kCalendar;
  const auto calendar = run_study_a(c);
  ASSERT_EQ(heap.total_departures, calendar.total_departures);
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_DOUBLE_EQ(heap.mean_delays[i], calendar.mean_delays[i]);
    EXPECT_EQ(heap.departures[i], calendar.departures[i]);
  }
}

TEST(StudyA, SawtoothIndexPopulated) {
  const auto r = run_study_a(quick_config());
  ASSERT_EQ(r.sawtooth_index.size(), 4u);
  for (const double s : r.sawtooth_index) EXPECT_GE(s, 0.0);
}

}  // namespace
}  // namespace pds
