// Study C (finite buffer + droppers): coupled delay and loss
// differentiation, the paper's stated future work.
#include <gtest/gtest.h>

#include "core/study_c.hpp"

namespace pds {
namespace {

StudyCConfig overload_config() {
  StudyCConfig c;
  c.offered_load = 1.3;
  c.sim_time = 1.5e5;
  c.buffer_packets = 100;
  c.seed = 5;
  return c;
}

TEST(StudyC, ShedsExactlyTheExcessLoad) {
  const auto r = run_study_c(overload_config());
  // 30% overload: aggregate loss ~ 0.3/1.3 = 0.23; the link stays pinned
  // near full utilization.
  EXPECT_NEAR(r.aggregate_loss_rate, 0.3 / 1.3, 0.05);
  EXPECT_GT(r.measured_utilization, 0.95);
  EXPECT_GT(r.total_drops, 1000u);
}

TEST(StudyC, PlrPinsLossRatiosToLdps) {
  const auto r = run_study_c(overload_config());
  ASSERT_EQ(r.loss_ratios.size(), 3u);
  for (const double ratio : r.loss_ratios) {
    EXPECT_NEAR(ratio, 2.0, 0.2);  // LDPs 8,4,2,1
  }
}

TEST(StudyC, WtpStillDifferentiatesSurvivorDelays) {
  const auto r = run_study_c(overload_config());
  ASSERT_EQ(r.delay_ratios.size(), 3u);
  for (const double ratio : r.delay_ratios) {
    EXPECT_GT(ratio, 1.4);  // proportional-ish even while dropping
    EXPECT_LT(ratio, 2.8);
  }
}

TEST(StudyC, DropTailFollowsLoadNotLdps) {
  auto c = overload_config();
  c.policy = DropPolicy::kDropIncoming;
  c.ldp.clear();  // unused by drop-tail
  const auto r = run_study_c(c);
  // Equal class loads + classless drops: loss rates roughly equal.
  for (const double ratio : r.loss_ratios) {
    EXPECT_NEAR(ratio, 1.0, 0.25);
  }
}

TEST(StudyC, SlidingWindowTracksLdpsToo) {
  auto c = overload_config();
  c.plr_window = 2000;
  const auto r = run_study_c(c);
  for (const double ratio : r.loss_ratios) {
    EXPECT_NEAR(ratio, 2.0, 0.3);
  }
}

TEST(StudyC, UnevenLoadsStillHitLossTargets) {
  auto c = overload_config();
  c.load_fractions = {0.1, 0.2, 0.3, 0.4};  // heavy high classes
  const auto r = run_study_c(c);
  for (const double ratio : r.loss_ratios) {
    EXPECT_NEAR(ratio, 2.0, 0.35);
  }
}

TEST(StudyC, UnderloadProducesNoLoss) {
  auto c = overload_config();
  c.offered_load = 0.6;
  const auto r = run_study_c(c);
  EXPECT_EQ(r.total_drops, 0u);
  EXPECT_DOUBLE_EQ(r.aggregate_loss_rate, 0.0);
}

TEST(StudyC, DeterministicPerSeed) {
  const auto a = run_study_c(overload_config());
  const auto b = run_study_c(overload_config());
  EXPECT_EQ(a.total_drops, b.total_drops);
  EXPECT_EQ(a.total_arrivals, b.total_arrivals);
}

TEST(StudyC, ValidatesConfig) {
  auto c = overload_config();
  c.offered_load = 0.0;
  EXPECT_THROW(run_study_c(c), std::invalid_argument);
  c = overload_config();
  c.ldp = {1.0};  // size mismatch under kPlr
  EXPECT_THROW(run_study_c(c), std::invalid_argument);
  c = overload_config();
  c.buffer_packets = 0;
  EXPECT_THROW(run_study_c(c), std::invalid_argument);
}

}  // namespace
}  // namespace pds
