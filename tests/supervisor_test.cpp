// Run supervision: per-cell failure isolation, the watchdog, and the
// determinism-under-faults differential (--jobs=1 vs --jobs=N).
#include <gtest/gtest.h>

#include <atomic>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/study_a.hpp"
#include "exp/supervisor.hpp"
#include "exp/thread_pool.hpp"

namespace pds {
namespace {

// ------------------------------------------------------- failure isolation

TEST(SupervisedSweep, ThrowingCellNeverKillsSiblings) {
  const auto result = run_supervised_sweep(
      8, SupervisorOptions{}, [](std::size_t i) -> int {
        if (i == 3) throw std::runtime_error("cell 3 is broken");
        return static_cast<int>(10 * i);
      });
  ASSERT_EQ(result.cells.size(), 8u);
  for (std::size_t i = 0; i < 8; ++i) {
    if (i == 3) continue;
    EXPECT_EQ(result.cells[i], static_cast<int>(10 * i));
  }
  EXPECT_EQ(result.cells[3], 0);  // default-constructed
  EXPECT_FALSE(result.ok());
  ASSERT_EQ(result.failures.size(), 1u);
  EXPECT_EQ(result.failures[0].index, 3u);
  EXPECT_EQ(result.failures[0].error, "cell 3 is broken");
  EXPECT_EQ(result.failures[0].attempts, 1);
}

TEST(SupervisedSweep, FailuresAreSortedByIndex) {
  const auto result = run_supervised_sweep(
      16, SupervisorOptions{}, [](std::size_t i) -> int {
        if (i % 3 == 0) throw std::invalid_argument("bad");
        return 1;
      });
  ASSERT_EQ(result.failures.size(), 6u);
  for (std::size_t k = 0; k + 1 < result.failures.size(); ++k) {
    EXPECT_LT(result.failures[k].index, result.failures[k + 1].index);
  }
}

TEST(SupervisedSweep, RetryOnceRecoversATransientFailure) {
  std::atomic<int> calls{0};
  const auto result = run_supervised_sweep(
      4, SupervisorOptions{.retry_once = true}, [&](std::size_t i) -> int {
        if (i == 2 && calls.fetch_add(1) == 0) {
          throw std::runtime_error("transient");
        }
        return static_cast<int>(i);
      });
  EXPECT_TRUE(result.ok());
  EXPECT_EQ(result.cells[2], 2);

  // A deterministic failure still fails — after two attempts.
  const auto persistent = run_supervised_sweep(
      4, SupervisorOptions{.retry_once = true}, [](std::size_t i) -> int {
        if (i == 1) throw std::runtime_error("always");
        return 0;
      });
  ASSERT_EQ(persistent.failures.size(), 1u);
  EXPECT_EQ(persistent.failures[0].attempts, 2);
}

TEST(SupervisedSweep, NonStdExceptionsAreRecordedToo) {
  const auto result = run_supervised_sweep(
      2, SupervisorOptions{}, [](std::size_t i) -> int {
        if (i == 0) throw 42;  // NOLINT: exercising the catch-all path
        return 1;
      });
  ASSERT_EQ(result.failures.size(), 1u);
  EXPECT_EQ(result.failures[0].error, "unknown exception");
}

// ----------------------------------------------------------------- watchdog

TEST(Watchdog, CatchesASeededLivelockAndSnapshotsTheWreck) {
  // A self-perpetuating zero-delay event: the classic livelock. The event
  // budget must kill it deterministically and the error must carry the
  // diagnostic snapshot.
  Simulator sim;
  std::function<void()> spin = [&] { sim.schedule_in(0.0, [&] { spin(); }); };
  sim.schedule_at(1.0, [&] { spin(); });
  Watchdog dog(sim, WatchdogLimits{.max_events = 1000},
               [] { return std::string("stuck-component: spinner"); });
  try {
    dog.run_until(100.0);
    FAIL() << "expected WatchdogError";
  } catch (const WatchdogError& e) {
    EXPECT_TRUE(dog.tripped());
    EXPECT_EQ(e.executed, 1000u);
    EXPECT_DOUBLE_EQ(e.now, 1.0);  // the clock never advanced: livelock
    const std::string what = e.what();
    EXPECT_NE(what.find("watchdog: event budget exceeded"),
              std::string::npos);
    EXPECT_NE(what.find("now=1"), std::string::npos);
    EXPECT_NE(what.find("executed=1000"), std::string::npos);
    EXPECT_NE(what.find("pending="), std::string::npos);
    EXPECT_NE(what.find("stuck-component: spinner"), std::string::npos);
  }
  // The budget is deterministic: a re-run trips at exactly the same point.
  Simulator sim2;
  std::function<void()> spin2 = [&] {
    sim2.schedule_in(0.0, [&] { spin2(); });
  };
  sim2.schedule_at(1.0, [&] { spin2(); });
  Watchdog dog2(sim2, WatchdogLimits{.max_events = 1000});
  try {
    dog2.run_until(100.0);
    FAIL() << "expected WatchdogError";
  } catch (const WatchdogError& e) {
    EXPECT_EQ(e.executed, 1000u);
    EXPECT_DOUBLE_EQ(e.now, 1.0);
  }
}

TEST(Watchdog, WallClockDeadlineKillsARealHang) {
  Simulator sim;
  std::function<void()> spin = [&] { sim.schedule_in(0.0, [&] { spin(); }); };
  sim.schedule_at(0.0, [&] { spin(); });
  Watchdog dog(sim, WatchdogLimits{.max_wall_seconds = 0.05});
  EXPECT_THROW(dog.run_until(1.0), WatchdogError);
  EXPECT_TRUE(dog.tripped());
}

TEST(Watchdog, DisabledLimitsRunToCompletion) {
  Simulator sim;
  int fired = 0;
  sim.schedule_at(1.0, [&] { ++fired; });
  Watchdog dog(sim, WatchdogLimits{});
  dog.run_until(10.0);
  EXPECT_EQ(fired, 1);
  EXPECT_FALSE(dog.tripped());
  EXPECT_DOUBLE_EQ(sim.now(), 10.0);
}

TEST(Watchdog, GenerousBudgetDoesNotPerturbTheRun) {
  // The same event chain with and without an (unreached) budget produces
  // the same clock and event count.
  auto run_chain = [](bool budgeted) {
    Simulator sim;
    std::uint64_t count = 0;
    std::function<void()> step = [&] {
      if (++count < 500) sim.schedule_in(1.0, [&] { step(); });
    };
    sim.schedule_at(0.0, [&] { step(); });
    Watchdog dog(sim, budgeted ? WatchdogLimits{.max_events = 1000000}
                               : WatchdogLimits{});
    dog.run_until(1e6);
    return std::pair<double, std::uint64_t>(sim.now(), sim.executed_events());
  };
  EXPECT_EQ(run_chain(true), run_chain(false));
}

TEST(Watchdog, StudyARunReportsPerClassBacklogsOnTrip) {
  StudyAConfig config;
  config.sim_time = 1.0e5;
  config.max_events = 5000;  // far too few to finish: guaranteed trip
  try {
    run_study_a(config);
    FAIL() << "expected WatchdogError";
  } catch (const WatchdogError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("watchdog: event budget exceeded"),
              std::string::npos);
    EXPECT_NE(what.find("class 0 backlog="), std::string::npos);
    EXPECT_NE(what.find("class 3 backlog="), std::string::npos);
  }
}

// ------------------------------------------------------------- differential

// Study A cells under a shared fault plan, reduced to a printable report —
// the library-level analogue of a bench's stdout.
std::string faulted_sweep_report() {
  const char* plan =
      "seed 11\n"
      "degrade link at=8000 for=2000 factor=0.5\n"
      "stall link at=15000 for=150\n"
      "down link at=22000 for=600 mode=hold\n";
  const std::vector<SchedulerKind> kinds{SchedulerKind::kWtp,
                                         SchedulerKind::kBpr};
  const auto sup = run_supervised_sweep(
      kinds.size() * 2, SupervisorOptions{}, [&](std::size_t i) {
        StudyAConfig config;
        config.scheduler = kinds[i % kinds.size()];
        config.seed = 1 + i / kinds.size();
        config.sim_time = 3.0e4;
        config.fault_plan = plan;
        config.max_events = 100000000;
        const auto r = run_study_a(config);
        std::ostringstream os;
        os << r.total_departures << " " << r.fault_episodes << " "
           << r.fault_drops;
        for (const double d : r.mean_delays) os << " " << d;
        return os.str();
      });
  std::ostringstream out;
  for (const auto& cell : sup.cells) out << cell << "\n";
  out << sup.failures.size() << " failures\n";
  return out.str();
}

TEST(Determinism, FaultedSweepIsByteIdenticalAcrossWorkerCounts) {
  ThreadPool::set_global_workers(1);
  const auto serial = faulted_sweep_report();
  ThreadPool::set_global_workers(4);
  const auto parallel = faulted_sweep_report();
  ThreadPool::set_global_workers(0);  // restore auto for other suites
  EXPECT_EQ(serial, parallel);
  // Sanity: the plan actually ran (3 episodes per cell, no failures).
  EXPECT_NE(serial.find(" 3 0"), std::string::npos);
  EXPECT_NE(serial.find("0 failures"), std::string::npos);
}

}  // namespace
}  // namespace pds
