// Telemetry tests: span tracing (content-sort determinism, sweep layouts,
// kernel batching), the run-report JSON DOM and schema header, atomic
// output-file semantics, and the tentpole contract — sweep span/report
// artifacts are byte-identical for any worker count.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <iterator>
#include <limits>
#include <stdexcept>
#include <string>
#include <vector>

#include "exp/supervisor.hpp"
#include "exp/thread_pool.hpp"
#include "obs/report.hpp"
#include "obs/span.hpp"
#include "util/atomic_file.hpp"

namespace pds {
namespace {

struct TempFile {
  explicit TempFile(const std::string& name)
      : path(testing::TempDir() + name) {}
  ~TempFile() {
    std::remove(path.c_str());
    std::remove((path + ".tmp").c_str());
  }
  std::string path;
};

bool file_exists(const std::string& path) {
  return std::ifstream(path).good();
}

std::string slurp(const std::string& path) {
  std::ifstream in(path);
  std::string text((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  return text;
}

CellRecord cell(std::size_t index, std::uint64_t work, std::uint32_t worker,
                double start_s = 0.0, double run_s = 0.0) {
  CellRecord r;
  r.index = index;
  r.work = work;
  r.worker = worker;
  r.start_s = start_s;
  r.run_s = run_s;
  r.attempts = 1;
  return r;
}

const Span* find_span(const SpanBuffer& buffer, const std::string& name) {
  for (const Span& s : buffer.spans()) {
    if (s.name == name) return &s;
  }
  return nullptr;
}

TEST(SpanTracer, RenderIsIndependentOfEmissionOrder) {
  // The same span set appended in two different orders (as different
  // workers would) must render to identical bytes: the content sort is the
  // determinism mechanism write() relies on.
  const std::vector<Span> set{
      {10.0, 5.0, 0, 0, "arrival", "kernel", "\"count\":3"},
      {15.0, 2.0, 0, 0, "departure", "kernel", "\"count\":1"},
      {12.0, 8.0, 0, 1, "degrade link", "fault", ""},
      {0.0, 30.0, 0, 2, "cell 0", "sweep.cell", "\"index\":0"},
  };
  SpanTracer forward;
  for (const Span& s : set) forward.buffer().emit(s);
  SpanTracer reverse;
  for (auto it = set.rbegin(); it != set.rend(); ++it) {
    reverse.buffer().emit(*it);
  }
  EXPECT_EQ(forward.render(), reverse.render());
}

TEST(SpanTracer, RenderEmitsTraceEventEnvelopeAndTrackMetadata) {
  SpanTracer tracer;
  tracer.buffer().emit({1.0, 2.0, 0, 0, "arrival", "kernel", ""});
  tracer.buffer().emit({3.0, 1.0, 0, 1, "down link", "fault", ""});
  const std::string json = tracer.render();
  EXPECT_EQ(json.rfind("{\"traceEvents\":[", 0), 0u);
  EXPECT_NE(json.find("\"displayTimeUnit\":\"ms\""), std::string::npos);
  // One process_name for pid 0, thread_name rows for both tids.
  EXPECT_NE(json.find("\"process_name\",\"ph\":\"M\",\"pid\":0,"
                      "\"args\":{\"name\":\"sim\"}"),
            std::string::npos);
  EXPECT_NE(json.find("\"args\":{\"name\":\"kernel\"}"), std::string::npos);
  EXPECT_NE(json.find("\"args\":{\"name\":\"fault\"}"), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\",\"ts\":1,\"dur\":2,\"pid\":0,\"tid\":0"),
            std::string::npos);
}

TEST(SpanTracer, DeterministicModeLaysCellsBackToBackInGridOrder) {
  // Cells get dur = work (minimum 1 us so empty/failed cells stay visible)
  // regardless of which worker ran them or when.
  SweepTelemetry telemetry;
  telemetry.cells = {cell(0, 50, 3, 0.9, 0.1), cell(1, 0, 1, 0.1, 0.2),
                     cell(2, 20, 0, 0.5, 0.3)};
  telemetry.workers = 4;
  SpanTracer tracer(SpanMode::kDeterministic);
  tracer.add_sweep(telemetry);
  ASSERT_EQ(tracer.span_count(), 3u);

  const Span* c0 = find_span(tracer.buffer(), "cell 0");
  const Span* c1 = find_span(tracer.buffer(), "cell 1");
  const Span* c2 = find_span(tracer.buffer(), "cell 2");
  ASSERT_TRUE(c0 != nullptr && c1 != nullptr && c2 != nullptr);
  EXPECT_DOUBLE_EQ(c0->ts, 0.0);
  EXPECT_DOUBLE_EQ(c0->dur, 50.0);
  EXPECT_DOUBLE_EQ(c1->ts, 50.0);
  EXPECT_DOUBLE_EQ(c1->dur, 1.0);  // work 0 still renders
  EXPECT_DOUBLE_EQ(c2->ts, 51.0);
  EXPECT_DOUBLE_EQ(c2->dur, 20.0);
  for (const Span* s : {c0, c1, c2}) {
    EXPECT_EQ(s->pid, kSpanSimPid);
    EXPECT_EQ(s->cat, "sweep.cell");
  }
  EXPECT_NE(c0->args.find("\"work\":50"), std::string::npos);
  EXPECT_NE(c0->args.find("\"failed\":false"), std::string::npos);
}

TEST(SpanTracer, WallModePlacesCellsOnWorkersWithWaitAndAssembleSpans) {
  // Worker 0 runs cell 0 at t=0 for 10 us and cell 1 at t=20 us for 5 us:
  // the 10 us idle gap becomes a "wait" span, and the tail from the last
  // cell end (25 us) to the sweep end (40 us) becomes the "assemble" span.
  SweepTelemetry telemetry;
  telemetry.cells = {cell(0, 5, 0, 0.0, 10e-6), cell(1, 5, 0, 20e-6, 5e-6)};
  telemetry.workers = 1;
  telemetry.elapsed_s = 40e-6;
  SpanTracer tracer(SpanMode::kWall);
  tracer.add_sweep(telemetry);

  const Span* c0 = find_span(tracer.buffer(), "cell 0");
  const Span* wait = find_span(tracer.buffer(), "wait");
  const Span* assemble = find_span(tracer.buffer(), "assemble");
  ASSERT_TRUE(c0 != nullptr && wait != nullptr && assemble != nullptr);
  EXPECT_EQ(c0->pid, 1u);  // wall pids are worker + 1 (pid 0 is "sim")
  EXPECT_EQ(c0->tid, 0u);  // home shard under one worker
  EXPECT_DOUBLE_EQ(wait->ts, 10.0);
  EXPECT_DOUBLE_EQ(wait->dur, 10.0);
  EXPECT_DOUBLE_EQ(assemble->ts, 25.0);
  EXPECT_DOUBLE_EQ(assemble->dur, 15.0);
  EXPECT_NE(assemble->args.find("\"workers\":1"), std::string::npos);
}

TEST(SpanTracer, EmptySweepAddsNothing) {
  SpanTracer tracer;
  tracer.add_sweep(SweepTelemetry{});
  EXPECT_EQ(tracer.span_count(), 0u);
}

TEST(KernelSpanMonitor, BatchesConsecutiveSameLabelEvents) {
  SpanBuffer buffer;
  KernelSpanMonitor monitor(buffer);
  static const char kArrival[] = "arrival";
  static const char kDeparture[] = "departure";
  for (double t : {1.0, 2.0, 3.0}) {
    monitor.on_event_begin(t, kArrival, 0);
    monitor.on_event_end(t, kArrival);
  }
  monitor.on_event_begin(4.0, kDeparture, 0);
  monitor.on_event_end(4.0, kDeparture);
  EXPECT_EQ(buffer.size(), 1u);  // arrival batch closed by the label change
  monitor.finish();
  EXPECT_EQ(monitor.events_seen(), 4u);

  ASSERT_EQ(buffer.size(), 2u);
  const Span& arrivals = buffer.spans()[0];
  EXPECT_EQ(arrivals.name, "arrival");
  EXPECT_EQ(arrivals.cat, "kernel");
  EXPECT_DOUBLE_EQ(arrivals.ts, 1.0);
  EXPECT_DOUBLE_EQ(arrivals.dur, 2.0);
  EXPECT_EQ(arrivals.args, "\"count\":3");
  EXPECT_EQ(buffer.spans()[1].args, "\"count\":1");
}

TEST(KernelSpanMonitor, BatchesMatchEqualLabelsByContentNotPointer) {
  // Two distinct char arrays with equal text must coalesce: event labels
  // are string literals but identity is not guaranteed across TUs.
  static const char a[] = "arrival";
  static const char b[] = "arrival";
  SpanBuffer buffer;
  KernelSpanMonitor monitor(buffer);
  monitor.on_event_begin(1.0, a, 0);
  monitor.on_event_begin(2.0, b, 0);
  monitor.finish();
  ASSERT_EQ(buffer.size(), 1u);
  EXPECT_EQ(buffer.spans()[0].args, "\"count\":2");
}

TEST(KernelSpanMonitor, MaxBatchClosesLongHomogeneousStretches) {
  SpanBuffer buffer;
  KernelSpanMonitor monitor(buffer, 1.0, /*max_batch=*/2);
  static const char kLabel[] = "arrival";
  for (int i = 0; i < 5; ++i) {
    monitor.on_event_begin(static_cast<double>(i), kLabel, 0);
  }
  monitor.finish();
  ASSERT_EQ(buffer.size(), 3u);
  EXPECT_EQ(buffer.spans()[0].args, "\"count\":2");
  EXPECT_EQ(buffer.spans()[1].args, "\"count\":2");
  EXPECT_EQ(buffer.spans()[2].args, "\"count\":1");
}

TEST(KernelSpanMonitor, ScalesSimTimeToMicroseconds) {
  SpanBuffer buffer;
  KernelSpanMonitor monitor(buffer, /*us_per_time_unit=*/2.5);
  static const char kLabel[] = "arrival";
  monitor.on_event_begin(4.0, kLabel, 0);
  monitor.on_event_end(10.0, kLabel);
  monitor.finish();
  ASSERT_EQ(buffer.size(), 1u);
  EXPECT_DOUBLE_EQ(buffer.spans()[0].ts, 10.0);
  EXPECT_DOUBLE_EQ(buffer.spans()[0].dur, 15.0);
}

TEST(KernelSpanMonitor, FinishIsIdempotentAndFlushesOpenBatch) {
  SpanBuffer buffer;
  KernelSpanMonitor monitor(buffer);
  static const char kLabel[] = "arrival";
  monitor.on_event_begin(1.0, kLabel, 0);
  monitor.finish();
  monitor.finish();
  EXPECT_EQ(buffer.size(), 1u);
}

TEST(SimMonitorMux, FansOutToEveryRegisteredMonitor) {
  SpanBuffer b1, b2;
  KernelSpanMonitor m1(b1), m2(b2);
  SimMonitorMux mux;
  mux.add(&m1);
  mux.add(&m2);
  mux.add(nullptr);  // ignored
  static const char kLabel[] = "arrival";
  mux.on_event_begin(1.0, kLabel, 3);
  mux.on_event_end(2.0, kLabel);
  m1.finish();
  m2.finish();
  EXPECT_EQ(m1.events_seen(), 1u);
  EXPECT_EQ(m2.events_seen(), 1u);
  ASSERT_EQ(b1.size(), 1u);
  ASSERT_EQ(b2.size(), 1u);
  EXPECT_DOUBLE_EQ(b1.spans()[0].dur, 1.0);
}

TEST(Json, RendersScalarsArraysObjectsAndEscapes) {
  Json obj = Json::object();
  obj.set("i", -3)
      .set("u", 7u)
      .set("d", 2.5)
      .set("nan", std::numeric_limits<double>::quiet_NaN())
      .set("b", true)
      .set("n", Json())
      .set("s", "a\"b\nc")
      .set("arr", Json::array().push(1).push("x"));
  EXPECT_EQ(obj.dump(),
            "{\"i\":-3,\"u\":7,\"d\":2.5,\"nan\":null,\"b\":true,"
            "\"n\":null,\"s\":\"a\\\"b\\nc\",\"arr\":[1,\"x\"]}");
}

TEST(Json, PreservesInsertionOrder) {
  Json obj = Json::object();
  obj.set("zebra", 1).set("apple", 2);
  EXPECT_EQ(obj.dump(), "{\"zebra\":1,\"apple\":2}");
}

TEST(Json, KindMisuseThrows) {
  Json scalar(1);
  EXPECT_THROW(scalar.set("k", 1), std::logic_error);
  EXPECT_THROW(scalar.push(1), std::logic_error);
  EXPECT_THROW(Json::array().set("k", 1), std::logic_error);
  EXPECT_THROW(Json::object().push(1), std::logic_error);
}

TEST(RunReport, GoldenSchemaHeaderAndSectionOrder) {
  // The header is pinned: consumers dispatch on the first two keys. The
  // schema string only changes with a version bump.
  RunReport report("study_a");
  report.set_section("results", Json::object().set("departures", 42));
  report.set_section("run", Json::object().set("seed", 1));
  EXPECT_EQ(report.dump(),
            "{\"schema\":\"pds.run_report/1\",\"kind\":\"study_a\","
            "\"results\":{\"departures\":42},\"run\":{\"seed\":1}}\n");
}

TEST(RunReport, SetSectionReplacesByKey) {
  RunReport report("study_a");
  report.set_section("run", Json::object().set("seed", 1));
  report.set_section("run", Json::object().set("seed", 9));
  EXPECT_EQ(report.dump(),
            "{\"schema\":\"pds.run_report/1\",\"kind\":\"study_a\","
            "\"run\":{\"seed\":9}}\n");
}

TEST(RunReport, WriteCommitsAtomically) {
  TempFile file("report_atomic.json");
  RunReport report("study_a");
  report.write(file.path);
  EXPECT_FALSE(file_exists(file.path + ".tmp"));
  EXPECT_EQ(slurp(file.path), report.dump());
}

TEST(SweepSections, CellsJsonIsDeterministicAndVolatileJsonIsNot) {
  SweepTelemetry telemetry;
  telemetry.cells = {cell(0, 10, 2, 0.25, 0.5)};
  telemetry.cells[0].failed = true;
  telemetry.workers = 4;
  telemetry.steals = 3;
  telemetry.worker_busy_s = {0.5};
  telemetry.elapsed_s = 1.5;
  EXPECT_EQ(sweep_cells_json(telemetry).dump(),
            "[{\"index\":0,\"work\":10,\"attempts\":1,\"failed\":true}]");
  // The volatile section carries the schedule-dependent fields and nothing
  // deterministic consumers should ever diff.
  const std::string vol = sweep_volatile_json(telemetry).dump();
  EXPECT_NE(vol.find("\"steals\":3"), std::string::npos);
  EXPECT_NE(vol.find("\"worker\":2"), std::string::npos);
  EXPECT_EQ(vol.find("\"work\":"), std::string::npos);
}

TEST(AtomicOutFile, DiscardsPartialOutputOnUnwind) {
  TempFile file("atomic_unwind.txt");
  try {
    AtomicOutFile out(file.path);
    out.stream() << "partial row that must never be published";
    throw std::runtime_error("cell blew up");
  } catch (const std::runtime_error&) {
  }
  EXPECT_FALSE(file_exists(file.path));
  EXPECT_FALSE(file_exists(file.path + ".tmp"));
}

TEST(AtomicOutFile, DestructorCommitsOnNormalExit) {
  TempFile file("atomic_commit.txt");
  {
    AtomicOutFile out(file.path);
    out.stream() << "row\n";
    EXPECT_FALSE(file_exists(file.path));  // still under the .tmp name
  }
  EXPECT_EQ(slurp(file.path), "row\n");
  EXPECT_FALSE(file_exists(file.path + ".tmp"));
}

TEST(AtomicOutFile, CloseIsIdempotent) {
  TempFile file("atomic_idem.txt");
  AtomicOutFile out(file.path);
  out.stream() << "once";
  out.close();
  EXPECT_TRUE(out.closed());
  out.close();
  EXPECT_EQ(slurp(file.path), "once");
}

// The tentpole contract: a supervised sweep's deterministic telemetry
// artifacts — span trace and run report — are byte-identical for any worker
// count, including in the presence of a failing cell.
class JobsDifferential {
 public:
  struct Artifacts {
    std::string spans;
    std::string report;
  };

  static Artifacts run(std::uint32_t workers) {
    ThreadPool::set_global_workers(workers);
    SweepTelemetry telemetry;
    SupervisorOptions opts;
    opts.telemetry = &telemetry;
    const auto sup = run_supervised_sweep(kCells, opts, [](std::size_t i) {
      if (i == 5) throw std::runtime_error("scripted cell failure");
      // Deterministic per-cell work measure; which worker runs the cell
      // must not matter.
      report_cell_work(100 * (i + 1));
      return i;
    });

    SpanTracer tracer(SpanMode::kDeterministic);
    tracer.add_sweep(telemetry);

    RunReport report("supervised_sweep");
    report.set_section("run", Json::object().set("cells", kCells));
    report.set_section("supervisor",
                       Json::object()
                           .set("cells", sweep_cells_json(telemetry))
                           .set("failures", failures_json(sup.failures)));
    return Artifacts{tracer.render(), report.dump()};
  }

  static constexpr std::size_t kCells = 12;
};

TEST(TelemetryJobsDifferential, SweepArtifactsAreByteIdenticalAcrossJobs) {
  const auto serial = JobsDifferential::run(1);
  const auto parallel = JobsDifferential::run(4);
  ThreadPool::set_global_workers(0);  // restore the auto-sized pool
  EXPECT_EQ(serial.spans, parallel.spans);
  EXPECT_EQ(serial.report, parallel.report);
  // Sanity: the artifacts actually carry the sweep, including the failure.
  EXPECT_NE(serial.spans.find("\"name\":\"cell 11\""), std::string::npos);
  EXPECT_NE(serial.report.find("scripted cell failure"), std::string::npos);
  EXPECT_NE(serial.report.find("\"work\":1200"), std::string::npos);
}

}  // namespace
}  // namespace pds
