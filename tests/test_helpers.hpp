// Shared helpers for the scheduler tests: packet construction with explicit
// arrival stamps and a tiny driver that replays a scripted arrival sequence
// through a Link on a Simulator.
#pragma once

#include <vector>

#include "dsim/simulator.hpp"
#include "packet/packet.hpp"
#include "sched/link.hpp"
#include "sched/scheduler.hpp"

namespace pds::testutil {

inline Packet packet(std::uint64_t id, ClassId cls, std::uint32_t bytes,
                     SimTime arrival) {
  Packet p;
  p.id = id;
  p.cls = cls;
  p.size_bytes = bytes;
  p.arrival = arrival;
  p.created = arrival;
  return p;
}

struct ScriptedArrival {
  SimTime time;
  ClassId cls;
  std::uint32_t bytes;
};

struct Departure {
  std::uint64_t id;
  ClassId cls;
  SimTime wait;
  SimTime completed;
};

// Feeds the scripted arrivals (must be time-sorted) into a link over the
// given scheduler and returns all departures in completion order. Packet ids
// are assigned by script position.
inline std::vector<Departure> replay(Scheduler& sched, double capacity,
                                     const std::vector<ScriptedArrival>& in) {
  Simulator sim;
  std::vector<Departure> out;
  Link link(sim, sched, capacity, [&](Packet&& p, SimTime wait, SimTime now) {
    out.push_back(Departure{p.id, p.cls, wait, now});
  });
  std::uint64_t id = 0;
  for (const auto& a : in) {
    sim.schedule_at(a.time, [&link, a, id]() {
      Packet p;
      p.id = id;
      p.cls = a.cls;
      p.size_bytes = a.bytes;
      p.created = a.time;
      link.arrive(std::move(p));
    });
    ++id;
  }
  sim.run();
  return out;
}

}  // namespace pds::testutil
