#include <gtest/gtest.h>

#include <vector>

#include "sched/wtp.hpp"
#include "sched/link.hpp"
#include "traffic/token_bucket.hpp"

namespace pds {
namespace {

Packet make_packet(std::uint64_t id, std::uint32_t bytes, ClassId cls = 0) {
  Packet p;
  p.id = id;
  p.cls = cls;
  p.size_bytes = bytes;
  return p;
}

struct Forwarded {
  std::vector<std::pair<std::uint64_t, SimTime>> out;
};

struct Fixture {
  Simulator sim;
  Forwarded fwd;
  TokenBucketShaper shaper;

  explicit Fixture(TokenBucketConfig c)
      : shaper(sim, c, [this](Packet p) {
          fwd.out.emplace_back(p.id, sim.now());
        }) {}
};

TokenBucketConfig config(double rate, double burst, bool full = true) {
  TokenBucketConfig c;
  c.rate = rate;
  c.burst_bytes = burst;
  c.start_full = full;
  return c;
}

TEST(TokenBucket, ForwardsImmediatelyWithinBurst) {
  Fixture f(config(10.0, 500.0));
  f.sim.schedule_at(0.0, [&] {
    f.shaper.offer(make_packet(1, 200));
    f.shaper.offer(make_packet(2, 300));
  });
  f.sim.run();
  ASSERT_EQ(f.fwd.out.size(), 2u);
  EXPECT_DOUBLE_EQ(f.fwd.out[0].second, 0.0);
  EXPECT_DOUBLE_EQ(f.fwd.out[1].second, 0.0);
}

TEST(TokenBucket, DelaysNonConformantPackets) {
  Fixture f(config(10.0, 500.0));
  f.sim.schedule_at(0.0, [&] {
    f.shaper.offer(make_packet(1, 500));  // drains the bucket
    f.shaper.offer(make_packet(2, 100));  // needs 100 tokens -> 10 tu
  });
  f.sim.run();
  ASSERT_EQ(f.fwd.out.size(), 2u);
  EXPECT_DOUBLE_EQ(f.fwd.out[1].second, 10.0);
}

TEST(TokenBucket, SteadyStateRateIsShaped) {
  Fixture f(config(10.0, 100.0));
  f.sim.schedule_at(0.0, [&] {
    for (std::uint64_t i = 0; i < 50; ++i) {
      f.shaper.offer(make_packet(i, 100));  // burst of 50 packets at once
    }
  });
  f.sim.run();
  ASSERT_EQ(f.fwd.out.size(), 50u);
  // First leaves at t=0 (full bucket); thereafter one per 10 tu exactly.
  for (std::size_t i = 1; i < 50; ++i) {
    EXPECT_NEAR(f.fwd.out[i].second, 10.0 * static_cast<double>(i), 1e-9);
  }
}

TEST(TokenBucket, EmptyStartAccruesBeforeFirstPacket) {
  Fixture f(config(5.0, 100.0, /*full=*/false));
  f.sim.schedule_at(0.0, [&] { f.shaper.offer(make_packet(1, 100)); });
  f.sim.run();
  ASSERT_EQ(f.fwd.out.size(), 1u);
  EXPECT_DOUBLE_EQ(f.fwd.out[0].second, 20.0);  // 100 tokens at 5/tu
}

TEST(TokenBucket, IdleRefillsOnlyUpToBurst) {
  Fixture f(config(10.0, 300.0));
  f.sim.schedule_at(0.0, [&] { f.shaper.offer(make_packet(1, 300)); });
  // Long idle period: the bucket caps at 300, not rate * time.
  f.sim.schedule_at(1000.0, [&] {
    EXPECT_DOUBLE_EQ(f.shaper.tokens(1000.0), 300.0);
    f.shaper.offer(make_packet(2, 300));
    f.shaper.offer(make_packet(3, 300));
  });
  f.sim.run();
  ASSERT_EQ(f.fwd.out.size(), 3u);
  EXPECT_DOUBLE_EQ(f.fwd.out[1].second, 1000.0);
  EXPECT_DOUBLE_EQ(f.fwd.out[2].second, 1030.0);  // waits a full refill
}

TEST(TokenBucket, PreservesOrderAcrossSizes) {
  Fixture f(config(10.0, 1500.0));
  f.sim.schedule_at(0.0, [&] {
    f.shaper.offer(make_packet(1, 1500));
    f.shaper.offer(make_packet(2, 40));   // small, but must wait its turn
    f.shaper.offer(make_packet(3, 40));
  });
  f.sim.run();
  ASSERT_EQ(f.fwd.out.size(), 3u);
  EXPECT_EQ(f.fwd.out[0].first, 1u);
  EXPECT_EQ(f.fwd.out[1].first, 2u);
  EXPECT_EQ(f.fwd.out[2].first, 3u);
  EXPECT_DOUBLE_EQ(f.fwd.out[1].second, 4.0);
}

TEST(TokenBucket, RejectsOversizedPacketAndBadConfig) {
  Fixture f(config(10.0, 100.0));
  EXPECT_THROW(f.shaper.offer(make_packet(1, 200)), std::invalid_argument);
  TokenBucketConfig bad;
  bad.rate = 0.0;
  EXPECT_THROW(bad.validate(), std::invalid_argument);
  bad = TokenBucketConfig{};
  bad.burst_bytes = 0.0;
  EXPECT_THROW(bad.validate(), std::invalid_argument);
}

TEST(TokenBucket, ShapedBurstCannotStarveUnderWtp) {
  // Proposition 2 requires a peak input rate above the link rate; a shaper
  // with rate <= link rate removes the precondition. Rebuild the wtp_test
  // starvation scenario but pass the burst through a shaper at exactly the
  // link rate: the low-class packet now departs within a bounded number of
  // service times instead of after the whole (arbitrarily long) burst.
  Simulator sim;
  SchedulerConfig sc;
  sc.sdp = {1.0, 8.0};
  WtpScheduler wtp(sc);
  std::vector<ClassId> order;
  Link link(sim, wtp, 10.0, [&](Packet&& p, SimTime, SimTime) {
    order.push_back(p.cls);
  });
  TokenBucketShaper shaper(sim, config(10.0, 100.0),
                           [&](Packet p) { link.arrive(std::move(p)); });
  // Occupier + victim, then a 40-packet class-1 burst offered at t=0 whose
  // *shaped* peak rate equals the link rate.
  sim.schedule_at(0.0, [&] {
    Packet occupier = make_packet(100, 100, 0);
    link.arrive(std::move(occupier));
  });
  sim.schedule_at(0.5, [&] {
    Packet victim = make_packet(101, 100, 0);
    link.arrive(std::move(victim));
  });
  sim.schedule_at(0.0, [&] {
    for (std::uint64_t i = 0; i < 40; ++i) {
      shaper.offer(make_packet(i, 100, 1));
    }
  });
  sim.run();
  ASSERT_EQ(order.size(), 42u);
  // The victim must NOT be last: find its position (class 0 after the
  // occupier).
  std::size_t victim_pos = order.size();
  for (std::size_t i = 1; i < order.size(); ++i) {
    if (order[i] == 0) victim_pos = i;
  }
  EXPECT_LT(victim_pos, order.size() - 1)
      << "shaping removed the Prop. 2 starvation precondition";
}

}  // namespace
}  // namespace pds
