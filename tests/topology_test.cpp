#include <gtest/gtest.h>

#include <vector>

#include "net/topology.hpp"

namespace pds {
namespace {

SchedulerConfig wtp_config() {
  SchedulerConfig c;
  c.sdp = {1.0, 2.0};
  c.link_capacity = 100.0;
  return c;
}

Packet make_packet(std::uint64_t id, ClassId cls,
                   std::uint32_t bytes = 100) {
  Packet p;
  p.id = id;
  p.cls = cls;
  p.size_bytes = bytes;
  return p;
}

struct Exits {
  std::vector<Packet> packets;
  Network::ExitHandler handler() {
    return [this](const Packet& p, SimTime) { packets.push_back(p); };
  }
};

TEST(Network, SingleLinkRouteDelivers) {
  Simulator sim;
  Network net(sim);
  const auto l0 = net.add_link(SchedulerKind::kWtp, wtp_config(), 100.0);
  Exits exits;
  const auto r = net.add_route({l0}, exits.handler());
  sim.schedule_at(0.0, [&] { net.inject(make_packet(1, 0), r); });
  sim.run();
  ASSERT_EQ(exits.packets.size(), 1u);
  EXPECT_EQ(exits.packets[0].hops_done, 1u);
  EXPECT_EQ(exits.packets[0].route, r);
}

TEST(Network, MultiHopRouteAccumulatesQueueing) {
  Simulator sim;
  Network net(sim);
  const auto a = net.add_link(SchedulerKind::kWtp, wtp_config(), 100.0, "a");
  const auto b = net.add_link(SchedulerKind::kWtp, wtp_config(), 100.0, "b");
  Exits exits;
  const auto r = net.add_route({a, b}, exits.handler());
  sim.schedule_at(0.0, [&] {
    net.inject(make_packet(1, 0), r);
    net.inject(make_packet(2, 0), r);  // queues behind packet 1 at hop a
  });
  sim.run();
  ASSERT_EQ(exits.packets.size(), 2u);
  EXPECT_EQ(exits.packets[0].hops_done, 2u);
  EXPECT_DOUBLE_EQ(exits.packets[0].cum_queueing, 0.0);
  EXPECT_DOUBLE_EQ(exits.packets[1].cum_queueing, 1.0);
  EXPECT_EQ(net.link_name(a), "a");
  EXPECT_EQ(net.link_name(1), "b");
}

TEST(Network, MergingRoutesShareTheCommonLink) {
  // Y topology: routes {a, c} and {b, c} contend on c.
  Simulator sim;
  Network net(sim);
  const auto a = net.add_link(SchedulerKind::kWtp, wtp_config(), 100.0);
  const auto b = net.add_link(SchedulerKind::kWtp, wtp_config(), 100.0);
  const auto c = net.add_link(SchedulerKind::kWtp, wtp_config(), 100.0);
  Exits left, right;
  const auto r1 = net.add_route({a, c}, left.handler());
  const auto r2 = net.add_route({b, c}, right.handler());
  sim.schedule_at(0.0, [&] {
    net.inject(make_packet(1, 0), r1);
    net.inject(make_packet(2, 0), r2);
  });
  sim.run();
  ASSERT_EQ(left.packets.size(), 1u);
  ASSERT_EQ(right.packets.size(), 1u);
  // Both arrive at c at t=1 (same transmission time on a and b); one of
  // them queues one transmission time behind the other.
  const double q1 = left.packets[0].cum_queueing;
  const double q2 = right.packets[0].cum_queueing;
  EXPECT_DOUBLE_EQ(std::min(q1, q2), 0.0);
  EXPECT_DOUBLE_EQ(std::max(q1, q2), 1.0);
  EXPECT_EQ(net.link(c).packets_sent(), 2u);
}

TEST(Network, DivergingRoutesDoNotInterfere) {
  // Shared first hop, distinct second hops.
  Simulator sim;
  Network net(sim);
  const auto head = net.add_link(SchedulerKind::kWtp, wtp_config(), 100.0);
  const auto up = net.add_link(SchedulerKind::kWtp, wtp_config(), 100.0);
  const auto down = net.add_link(SchedulerKind::kWtp, wtp_config(), 100.0);
  Exits u, d;
  const auto r1 = net.add_route({head, up}, u.handler());
  const auto r2 = net.add_route({head, down}, d.handler());
  sim.schedule_at(0.0, [&] {
    net.inject(make_packet(1, 0), r1);
    net.inject(make_packet(2, 0), r2);
  });
  sim.run();
  ASSERT_EQ(u.packets.size(), 1u);
  ASSERT_EQ(d.packets.size(), 1u);
  // Contention exists only at `head` (1 tu for the second packet); the
  // second hops are private.
  EXPECT_DOUBLE_EQ(u.packets[0].cum_queueing + d.packets[0].cum_queueing,
                   1.0);
  EXPECT_EQ(net.link(up).packets_sent(), 1u);
  EXPECT_EQ(net.link(down).packets_sent(), 1u);
}

TEST(Network, PerClassDifferentiationHoldsOnSharedLink) {
  // Saturate a shared link with both classes; the class-1 packet entering
  // simultaneously with a class-0 packet must exit the shared hop first
  // once the link is backlogged.
  Simulator sim;
  Network net(sim);
  const auto l = net.add_link(SchedulerKind::kWtp, wtp_config(), 100.0);
  Exits exits;
  const auto r = net.add_route({l}, exits.handler());
  sim.schedule_at(0.0, [&] {
    net.inject(make_packet(1, 0), r);  // seizes the link
    net.inject(make_packet(2, 0), r);
    net.inject(make_packet(3, 1), r);
  });
  sim.run();
  ASSERT_EQ(exits.packets.size(), 3u);
  EXPECT_EQ(exits.packets[0].id, 1u);
  EXPECT_EQ(exits.packets[1].id, 3u);  // higher class wins the tie
  EXPECT_EQ(exits.packets[2].id, 2u);
}

TEST(Network, UtilizationAccounting) {
  Simulator sim;
  Network net(sim);
  const auto l = net.add_link(SchedulerKind::kFcfs, wtp_config(), 100.0);
  Exits exits;
  const auto r = net.add_route({l}, exits.handler());
  EXPECT_DOUBLE_EQ(net.utilization(l), 0.0);
  sim.schedule_at(0.0, [&] { net.inject(make_packet(1, 0, 200), r); });
  sim.run_until(4.0);
  EXPECT_DOUBLE_EQ(net.utilization(l), 0.5);  // 2 tu busy of 4
}

TEST(Network, ValidatesStructure) {
  Simulator sim;
  Network net(sim);
  const auto exit_handler = [](const Packet&, SimTime) {};
  EXPECT_THROW(net.add_route({0}, exit_handler), std::invalid_argument);
  const auto l = net.add_link(SchedulerKind::kWtp, wtp_config(), 100.0);
  EXPECT_THROW(net.add_route({}, exit_handler), std::invalid_argument);
  EXPECT_THROW(net.add_route({l}, nullptr), std::invalid_argument);
  const auto r = net.add_route({l}, exit_handler);
  EXPECT_THROW(net.inject(make_packet(1, 0), r + 7), std::invalid_argument);
  Packet travelled = make_packet(2, 0);
  travelled.hops_done = 3;
  EXPECT_THROW(net.inject(std::move(travelled), r), std::invalid_argument);
  net.inject(make_packet(1, 0), r);
  EXPECT_THROW(net.add_link(SchedulerKind::kWtp, wtp_config(), 100.0),
               std::invalid_argument);
  EXPECT_THROW(net.link(99), std::invalid_argument);
}

TEST(Network, HairpinRouteRevisitsALink) {
  Simulator sim;
  Network net(sim);
  const auto l = net.add_link(SchedulerKind::kFcfs, wtp_config(), 100.0);
  Exits exits;
  const auto r = net.add_route({l, l, l}, exits.handler());
  sim.schedule_at(0.0, [&] { net.inject(make_packet(1, 0), r); });
  sim.run();
  ASSERT_EQ(exits.packets.size(), 1u);
  EXPECT_EQ(exits.packets[0].hops_done, 3u);
  EXPECT_EQ(net.link(l).packets_sent(), 3u);
}

// ------------------------------------------------------------- graph layer

TEST(Graph, ShortestPathFollowsDeclarationOrderOnTies) {
  // Diamond: a->b->d and a->c->d are both 2 hops. The tie goes to the
  // lexicographically smallest link-id sequence, i.e. through the earlier
  // declared a->b edge.
  Simulator sim;
  Network net(sim);
  const auto a = net.add_node("a");
  const auto b = net.add_node("b");
  const auto c = net.add_node("c");
  const auto d = net.add_node("d");
  const auto ab = net.add_edge(a, b, SchedulerKind::kWtp, wtp_config(), 100.0);
  net.add_edge(a, c, SchedulerKind::kWtp, wtp_config(), 100.0);
  const auto bd = net.add_edge(b, d, SchedulerKind::kWtp, wtp_config(), 100.0);
  net.add_edge(c, d, SchedulerKind::kWtp, wtp_config(), 100.0);
  EXPECT_EQ(net.shortest_path(a, d), (std::vector<LinkId>{ab, bd}));
  // Direct edge beats any 2-hop path regardless of declaration order.
  const auto ad = net.add_edge(a, d, SchedulerKind::kWtp, wtp_config(), 100.0);
  EXPECT_EQ(net.shortest_path(a, d), (std::vector<LinkId>{ad}));
}

TEST(Graph, ShortestPathHandlesUnreachableAndTrivialPairs) {
  Simulator sim;
  Network net(sim);
  const auto a = net.add_node("a");
  const auto b = net.add_node("b");
  net.add_edge(a, b, SchedulerKind::kWtp, wtp_config(), 100.0);
  EXPECT_TRUE(net.shortest_path(b, a).empty());  // directed: no way back
  EXPECT_TRUE(net.shortest_path(a, a).empty());
  EXPECT_THROW(net.add_route_between(b, a, [](const Packet&, SimTime) {}),
               std::invalid_argument);
}

TEST(Graph, AddRouteBetweenDeliversOverTheComputedPath) {
  Simulator sim;
  Network net(sim);
  const auto a = net.add_node("a");
  const auto b = net.add_node("b");
  const auto c = net.add_node("c");
  net.add_edge(a, b, SchedulerKind::kWtp, wtp_config(), 100.0);
  net.add_edge(b, c, SchedulerKind::kWtp, wtp_config(), 100.0);
  Exits exits;
  const auto r = net.add_route_between(a, c, exits.handler());
  EXPECT_EQ(net.route_path(r).size(), 2u);
  sim.schedule_at(0.0, [&] { net.inject(make_packet(1, 0), r); });
  sim.run();
  ASSERT_EQ(exits.packets.size(), 1u);
  EXPECT_EQ(exits.packets[0].hops_done, 2u);
}

TEST(Graph, NodeAndEdgeValidation) {
  Simulator sim;
  Network net(sim);
  const auto a = net.add_node("a");
  EXPECT_THROW(net.add_node("a"), std::invalid_argument);   // duplicate
  EXPECT_THROW(net.add_node(""), std::invalid_argument);    // empty
  EXPECT_THROW(net.add_edge(a, a, SchedulerKind::kWtp, wtp_config(), 100.0),
               std::invalid_argument);                      // self loop
  EXPECT_THROW(net.add_edge(a, 7, SchedulerKind::kWtp, wtp_config(), 100.0),
               std::invalid_argument);                      // unknown node
  const auto b = net.add_node("b");
  const auto ab = net.add_edge(a, b, SchedulerKind::kWtp, wtp_config(),
                               100.0);
  EXPECT_EQ(net.link_name(ab), "a>b");  // default edge name
  EXPECT_EQ(net.find_node("b"), std::optional<NodeId>(b));
  EXPECT_FALSE(net.find_node("ghost").has_value());
  EXPECT_EQ(net.num_nodes(), 2u);
}

// --------------------------------------------------------------- generators

TEST(Generators, LineRingAndTwoTierCounts) {
  const auto line = make_line_topology(5);
  EXPECT_EQ(line.nodes.size(), 5u);
  EXPECT_EQ(line.edges.size(), 4u);
  const auto ring = make_ring_topology(6);
  EXPECT_EQ(ring.nodes.size(), 6u);
  EXPECT_EQ(ring.edges.size(), 6u);
  // two_tier(2, 3): 1 core-mesh edge + 2 uplinks per pop.
  const auto tt = make_two_tier_topology(2, 3);
  EXPECT_EQ(tt.nodes.size(), 5u);
  EXPECT_EQ(tt.edges.size(), 7u);
  // Degenerate single-core variant: one uplink per pop, no mesh.
  const auto single = make_two_tier_topology(1, 2);
  EXPECT_EQ(single.edges.size(), 2u);
}

TEST(Generators, FatTreeK4HasCanonicalShape) {
  const auto ft = make_fat_tree_topology(4);
  // (k/2)^2 = 4 cores + k pods x (2 agg + 2 edge) = 20 nodes.
  EXPECT_EQ(ft.nodes.size(), 20u);
  // Per pod: 2x2 edge-agg bipartite + 2 agg x 2 core uplinks = 8.
  EXPECT_EQ(ft.edges.size(), 32u);
  EXPECT_EQ(ft.nodes[0], "core0");
  EXPECT_EQ(ft.nodes[4], "p0agg0");
  EXPECT_THROW(make_fat_tree_topology(3), std::invalid_argument);
}

TEST(Generators, BuildTopologyWiresBothDirections) {
  Simulator sim;
  Network net(sim);
  build_topology(net, make_ring_topology(4), SchedulerKind::kWtp,
                 wtp_config(), 100.0, "r.");
  EXPECT_EQ(net.num_nodes(), 4u);
  ASSERT_TRUE(net.find_node("r.n0").has_value());
  const auto n0 = *net.find_node("r.n0");
  const auto n2 = *net.find_node("r.n2");
  // Both rotational directions exist and are 2 hops.
  EXPECT_EQ(net.shortest_path(n0, n2).size(), 2u);
  EXPECT_EQ(net.shortest_path(n2, n0).size(), 2u);
}

}  // namespace
}  // namespace pds
