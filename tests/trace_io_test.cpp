#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "core/trace_io.hpp"
#include "sched/fcfs.hpp"
#include "sched/link.hpp"

namespace pds {
namespace {

std::string temp_path(const char* name) {
  return testing::TempDir() + name;
}

const std::vector<ArrivalRecord> kTrace{
    {0.0, 0, 40}, {1.5, 2, 550}, {1.5, 1, 1500}, {9.25, 0, 550}};

TEST(TraceIo, RoundTripsExactly) {
  const auto path = temp_path("pds_trace_roundtrip.csv");
  save_trace(path, kTrace);
  const auto loaded = load_trace(path, 4);
  ASSERT_EQ(loaded.size(), kTrace.size());
  for (std::size_t i = 0; i < kTrace.size(); ++i) {
    EXPECT_DOUBLE_EQ(loaded[i].time, kTrace[i].time);
    EXPECT_EQ(loaded[i].cls, kTrace[i].cls);
    EXPECT_EQ(loaded[i].size_bytes, kTrace[i].size_bytes);
  }
  std::remove(path.c_str());
}

TEST(TraceIo, RoundTripPreservesFullDoublePrecision) {
  const auto path = temp_path("pds_trace_precision.csv");
  const std::vector<ArrivalRecord> trace{{1.0 / 3.0, 0, 100}};
  save_trace(path, trace);
  const auto loaded = load_trace(path);
  EXPECT_DOUBLE_EQ(loaded[0].time, 1.0 / 3.0);
  std::remove(path.c_str());
}

TEST(TraceIo, RejectsMissingFile) {
  EXPECT_THROW(load_trace("/nonexistent/file.csv"), std::runtime_error);
}

TEST(TraceIo, RejectsBadHeader) {
  const auto path = temp_path("pds_trace_badheader.csv");
  std::ofstream(path) << "t,c,b\n0,0,100\n";
  EXPECT_THROW(load_trace(path), std::invalid_argument);
  std::remove(path.c_str());
}

TEST(TraceIo, RejectsMalformedRow) {
  const auto path = temp_path("pds_trace_badrow.csv");
  std::ofstream(path) << "time,class,bytes\n0.0;0;100\n";
  EXPECT_THROW(load_trace(path), std::runtime_error);
  std::remove(path.c_str());
}

TEST(TraceIo, RejectsUnorderedOrInvalidRecords) {
  const auto path = temp_path("pds_trace_unordered.csv");
  std::ofstream(path) << "time,class,bytes\n5.0,0,100\n1.0,0,100\n";
  EXPECT_THROW(load_trace(path), std::invalid_argument);
  std::remove(path.c_str());

  const auto path2 = temp_path("pds_trace_badclass.csv");
  std::ofstream(path2) << "time,class,bytes\n0.0,7,100\n";
  EXPECT_THROW(load_trace(path2, 4), std::invalid_argument);
  EXPECT_NO_THROW(load_trace(path2, 0));  // class check disabled
  std::remove(path2.c_str());
}

TEST(TraceReplay, DrivesALinkDeterministically) {
  Simulator sim;
  FcfsScheduler sched(4);
  std::vector<double> waits;
  Link link(sim, sched, 100.0, [&](Packet&&, SimTime wait, SimTime) {
    waits.push_back(wait);
  });
  std::uint64_t next_id = 0;
  const auto scheduled =
      replay_trace(sim, kTrace, [&](const ArrivalRecord& rec) {
        Packet p;
        p.id = next_id++;
        p.cls = rec.cls;
        p.size_bytes = rec.size_bytes;
        p.created = rec.time;
        link.arrive(std::move(p));
      });
  EXPECT_EQ(scheduled, kTrace.size());
  sim.run();
  ASSERT_EQ(waits.size(), kTrace.size());
  // Hand-checked Lindley waits at capacity 100 B/tu:
  // t=0 (40 B): 0; t=1.5 (550 B): 0; t=1.5 (1500 B): 5.5; t=9.25: 12.75.
  EXPECT_DOUBLE_EQ(waits[0], 0.0);
  EXPECT_DOUBLE_EQ(waits[1], 0.0);
  EXPECT_DOUBLE_EQ(waits[2], 5.5);
  EXPECT_DOUBLE_EQ(waits[3], 12.75);
}

TEST(TraceReplay, RejectsUnorderedTraceAndNullHandler) {
  Simulator sim;
  const std::vector<ArrivalRecord> bad{{5.0, 0, 10}, {1.0, 0, 10}};
  EXPECT_THROW(replay_trace(sim, bad, [](const ArrivalRecord&) {}),
               std::invalid_argument);
  EXPECT_THROW(replay_trace(sim, kTrace, nullptr), std::invalid_argument);
}

}  // namespace
}  // namespace pds
