#include <gtest/gtest.h>

#include "core/study_a.hpp"
#include "core/trace_study.hpp"

namespace pds {
namespace {

std::vector<ArrivalRecord> equal_size_trace(std::uint64_t seed) {
  StudyAConfig config;
  config.scheduler = SchedulerKind::kFcfs;
  config.utilization = 0.9;
  config.sim_time = 1.0e5;
  config.record_trace = true;
  config.seed = seed;
  auto trace = run_study_a(config).trace;
  for (auto& rec : trace) rec.size_bytes = 441;  // force Eq. 5's premise
  return trace;
}

TEST(TraceStudy, ConservationLawExactAcrossSchedulers) {
  const auto trace = equal_size_trace(31);
  TraceStudyConfig config;
  config.warmup_end = 0.0;
  double reference = -1.0;
  for (const auto kind :
       {SchedulerKind::kFcfs, SchedulerKind::kStrictPriority,
        SchedulerKind::kWtp, SchedulerKind::kBpr, SchedulerKind::kPad,
        SchedulerKind::kScfq, SchedulerKind::kVirtualClock}) {
    config.scheduler = kind;
    const auto r = run_trace_study(trace, config);
    if (reference < 0.0) {
      reference = r.total_wait;
    } else {
      EXPECT_NEAR(r.total_wait, reference, 1e-6 * reference)
          << to_string(kind);
    }
  }
}

TEST(TraceStudy, CountsExactlyTheSamePopulation) {
  const auto trace = equal_size_trace(32);
  TraceStudyConfig config;
  config.warmup_end = 1.0e4;
  config.scheduler = SchedulerKind::kWtp;
  const auto wtp = run_trace_study(trace, config);
  config.scheduler = SchedulerKind::kStrictPriority;
  const auto sp = run_trace_study(trace, config);
  ASSERT_EQ(wtp.departures.size(), sp.departures.size());
  for (std::size_t c = 0; c < wtp.departures.size(); ++c) {
    EXPECT_EQ(wtp.departures[c], sp.departures[c]);
  }
}

TEST(TraceStudy, WtpRedistributesTowardTheTargets) {
  auto trace = equal_size_trace(33);
  TraceStudyConfig config;
  config.warmup_end = 1.0e4;
  config.scheduler = SchedulerKind::kWtp;
  const auto r = run_trace_study(trace, config);
  for (const double ratio : r.ratios) {
    EXPECT_GT(ratio, 1.4);
    EXPECT_LT(ratio, 2.4);
  }
}

TEST(TraceStudy, MakespanIsSchedulerInvariantWithEqualSizes) {
  const auto trace = equal_size_trace(34);
  TraceStudyConfig config;
  config.scheduler = SchedulerKind::kFcfs;
  const auto a = run_trace_study(trace, config);
  config.scheduler = SchedulerKind::kBpr;
  const auto b = run_trace_study(trace, config);
  EXPECT_NEAR(a.makespan, b.makespan, 1e-9);
}

TEST(TraceStudy, ValidatesInputs) {
  TraceStudyConfig config;
  EXPECT_THROW(run_trace_study({}, config), std::invalid_argument);
  const std::vector<ArrivalRecord> five{{0.0, 5, 100}};
  EXPECT_THROW(run_trace_study(five, config), std::invalid_argument);
  config.capacity = 0.0;
  EXPECT_THROW(run_trace_study({{0.0, 0, 100}}, config),
               std::invalid_argument);
}

}  // namespace
}  // namespace pds
