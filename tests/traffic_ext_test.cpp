// On/off and ECN-adaptive sources: the burstiness and congestion-control
// substrates Sections 1 and 3 lean on.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "sched/fcfs.hpp"
#include "sched/link.hpp"
#include "traffic/ecn.hpp"
#include "traffic/onoff.hpp"

namespace pds {
namespace {

struct Collected {
  std::vector<Packet> packets;
  PacketHandler handler() {
    return [this](Packet p) { packets.push_back(std::move(p)); };
  }
};

// ---------------------------------------------------------------- on/off

TEST(OnOff, ValidatesConfig) {
  OnOffConfig bad;
  bad.peak_rate = 0.0;
  EXPECT_THROW(bad.validate(), std::invalid_argument);
  bad = OnOffConfig{};
  bad.pareto_alpha = 1.0;
  EXPECT_THROW(bad.validate(), std::invalid_argument);
  bad = OnOffConfig{};
  bad.mean_on = 1.0;  // cannot fit one 500 B packet at peak_rate 1
  EXPECT_THROW(bad.validate(), std::invalid_argument);
}

TEST(OnOff, MeanRateFormula) {
  OnOffConfig c;
  c.peak_rate = 10.0;
  c.mean_on = 100.0;
  c.mean_off = 300.0;
  EXPECT_DOUBLE_EQ(c.mean_rate(), 2.5);
}

TEST(OnOff, LongRunRateApproachesMeanRate) {
  Simulator sim;
  PacketIdAllocator ids;
  Collected got;
  OnOffConfig c;
  c.cls = 1;
  c.packet_bytes = 100;
  c.peak_rate = 10.0;   // 10 tu per packet while ON
  c.mean_on = 200.0;
  c.mean_off = 200.0;
  c.pareto_alpha = 1.6;
  OnOffSource src(sim, ids, c, Rng(3), got.handler());
  src.start(0.0);
  const double horizon = 2.0e6;
  sim.run_until(horizon);
  src.stop();
  const double bytes =
      static_cast<double>(got.packets.size()) * c.packet_bytes;
  // Heavy-tailed periods converge slowly; accept a wide band around the
  // nominal half-peak rate.
  EXPECT_NEAR(bytes / horizon, c.mean_rate(), 0.5 * c.mean_rate());
  EXPECT_GT(src.bursts_started(), 100u);
  for (const auto& p : got.packets) EXPECT_EQ(p.cls, 1u);
}

TEST(OnOff, PacketsWithinBurstAreBackToBackAtPeakRate) {
  Simulator sim;
  PacketIdAllocator ids;
  Collected got;
  OnOffConfig c;
  c.packet_bytes = 100;
  c.peak_rate = 10.0;
  c.mean_on = 500.0;
  c.mean_off = 5000.0;
  OnOffSource src(sim, ids, c, Rng(9), got.handler());
  src.start(0.0);
  sim.run_until(1.0e5);
  src.stop();
  ASSERT_GT(got.packets.size(), 10u);
  // Within a burst, consecutive emissions are exactly one serialization
  // time (10 tu) apart; across bursts the gap is much larger.
  int in_burst_gaps = 0;
  for (std::size_t i = 1; i < got.packets.size(); ++i) {
    const double gap = got.packets[i].created - got.packets[i - 1].created;
    if (gap < 100.0) {
      EXPECT_NEAR(gap, 10.0, 1e-9);
      ++in_burst_gaps;
    }
  }
  EXPECT_GT(in_burst_gaps, 0);
}

TEST(OnOff, StopSilencesTheSource) {
  Simulator sim;
  PacketIdAllocator ids;
  Collected got;
  OnOffConfig c;
  OnOffSource src(sim, ids, c, Rng(5), got.handler());
  src.start(0.0);
  sim.run_until(5000.0);
  src.stop();
  const auto emitted = src.packets_emitted();
  sim.run_until(50000.0);
  EXPECT_EQ(src.packets_emitted(), emitted);
}

// ------------------------------------------------------------------- ECN

TEST(EcnMarker, MarksAtThreshold) {
  FcfsScheduler sched(1);
  const EcnMarker marker(2);
  Packet p;
  p.cls = 0;
  p.size_bytes = 100;
  EXPECT_FALSE(marker.should_mark(sched));
  sched.enqueue(p, 0.0);
  EXPECT_FALSE(marker.should_mark(sched));
  sched.enqueue(p, 0.0);
  EXPECT_TRUE(marker.should_mark(sched));
  EXPECT_THROW(EcnMarker(0), std::invalid_argument);
}

TEST(EcnSource, AimdRateDynamics) {
  Simulator sim;
  PacketIdAllocator ids;
  Collected got;
  EcnSourceConfig c;
  c.initial_rate = 8.0;
  c.additive_increase = 1.0;
  c.multiplicative_decrease = 0.5;
  c.min_rate = 1.0;
  EcnAdaptiveSource src(sim, ids, c, Rng(1), got.handler());
  src.on_feedback(false);
  EXPECT_DOUBLE_EQ(src.current_rate(), 9.0);
  src.on_feedback(true);
  EXPECT_DOUBLE_EQ(src.current_rate(), 4.5);
  EXPECT_EQ(src.marks_received(), 1u);
  // Floor is respected.
  for (int i = 0; i < 10; ++i) src.on_feedback(true);
  EXPECT_DOUBLE_EQ(src.current_rate(), 1.0);
}

TEST(EcnSource, ValidatesConfig) {
  EcnSourceConfig c;
  c.multiplicative_decrease = 1.0;
  EXPECT_THROW(c.validate(), std::invalid_argument);
  c = EcnSourceConfig{};
  c.initial_rate = 0.01;  // below min_rate
  EXPECT_THROW(c.validate(), std::invalid_argument);
}

// Closed loop: adaptive sources + marking link reach stable high
// utilization with a bounded queue and no losses — Section 3's regime.
TEST(EcnSource, ClosedLoopStabilizesNearCapacity) {
  Simulator sim;
  PacketIdAllocator ids;
  FcfsScheduler sched(1);
  const double capacity = 39.375;
  const EcnMarker marker(30);
  std::vector<std::unique_ptr<EcnAdaptiveSource>> sources;

  std::uint64_t departed = 0;
  std::uint64_t max_backlog = 0;
  Link link(sim, sched, capacity,
            [&](Packet&&, SimTime, SimTime) { ++departed; });

  // Feedback path: the mark decision is made against the instantaneous
  // queue at enqueue time and applied immediately (a zero-RTT echo).
  Rng master(17);
  for (int s = 0; s < 4; ++s) {
    EcnSourceConfig c;
    c.packet_bytes = 441;
    c.initial_rate = 2.0;
    c.min_rate = 0.5;
    c.additive_increase = 0.2;
    sources.push_back(std::make_unique<EcnAdaptiveSource>(
        sim, ids, c, master.split(), [&, s](Packet p) {
          const bool mark = marker.should_mark(sched);
          std::uint64_t backlog = sched.backlog_packets(0);
          max_backlog = std::max(max_backlog, backlog);
          sources[static_cast<std::size_t>(s)]->on_feedback(mark);
          link.arrive(std::move(p));
        }));
    sources.back()->start(0.0);
  }

  const double horizon = 2.0e5;
  sim.run_until(horizon);
  for (auto& s : sources) s->stop();

  const double utilization = link.busy_time() / horizon;
  EXPECT_GT(utilization, 0.75) << "sources failed to fill the link";
  EXPECT_LE(utilization, 1.0 + 1e-9);
  // Queue stays near the marking threshold, far from unbounded growth.
  EXPECT_LT(max_backlog, 300u);
  EXPECT_GT(departed, 1000u);
}

}  // namespace
}  // namespace pds
