#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "packet/size_law.hpp"
#include "traffic/calibration.hpp"
#include "traffic/source.hpp"

namespace pds {
namespace {

struct Collected {
  std::vector<Packet> packets;
  PacketHandler handler() {
    return [this](Packet p) { packets.push_back(std::move(p)); };
  }
};

TEST(RenewalSource, EmitsTaggedPackets) {
  Simulator sim;
  PacketIdAllocator ids;
  Collected got;
  RenewalSource src(sim, ids, 2, constant_gaps(5.0), fixed_size(100), Rng(1),
                    got.handler());
  src.start(0.0);
  sim.run_until(26.0);
  ASSERT_EQ(got.packets.size(), 5u);  // at 5, 10, 15, 20, 25
  for (const auto& p : got.packets) {
    EXPECT_EQ(p.cls, 2u);
    EXPECT_EQ(p.size_bytes, 100u);
  }
  EXPECT_DOUBLE_EQ(got.packets[0].created, 5.0);
  EXPECT_EQ(src.packets_emitted(), 5u);
}

TEST(RenewalSource, IdsAreUniqueAcrossSources) {
  Simulator sim;
  PacketIdAllocator ids;
  Collected got;
  RenewalSource a(sim, ids, 0, constant_gaps(3.0), fixed_size(10), Rng(1),
                  got.handler());
  RenewalSource b(sim, ids, 1, constant_gaps(4.0), fixed_size(10), Rng(2),
                  got.handler());
  a.start(0.0);
  b.start(0.0);
  sim.run_until(30.0);
  std::vector<std::uint64_t> seen;
  for (const auto& p : got.packets) seen.push_back(p.id);
  std::sort(seen.begin(), seen.end());
  EXPECT_EQ(std::adjacent_find(seen.begin(), seen.end()), seen.end());
}

TEST(RenewalSource, StopHaltsEmission) {
  Simulator sim;
  PacketIdAllocator ids;
  Collected got;
  RenewalSource src(sim, ids, 0, constant_gaps(1.0), fixed_size(10), Rng(1),
                    got.handler());
  src.start(0.0);
  sim.run_until(5.5);
  src.stop();
  sim.run_until(100.0);
  EXPECT_EQ(got.packets.size(), 5u);
}

TEST(RenewalSource, CannotStartTwice) {
  Simulator sim;
  PacketIdAllocator ids;
  Collected got;
  RenewalSource src(sim, ids, 0, constant_gaps(1.0), fixed_size(10), Rng(1),
                    got.handler());
  src.start(0.0);
  EXPECT_THROW(src.start(1.0), std::invalid_argument);
}

TEST(RenewalSource, ParetoGapsHitTargetRate) {
  Simulator sim;
  PacketIdAllocator ids;
  Collected got;
  // alpha = 3 for a finite-variance convergence check.
  RenewalSource src(sim, ids, 0, pareto_gaps(3.0, 2.0), fixed_size(10),
                    Rng(7), got.handler());
  src.start(0.0);
  sim.run_until(100000.0);
  EXPECT_NEAR(static_cast<double>(got.packets.size()), 50000.0, 1500.0);
}

TEST(ClassMixSource, DrawsClassesByFractions) {
  Simulator sim;
  PacketIdAllocator ids;
  Collected got;
  ClassMixSource src(sim, ids, {0.4, 0.3, 0.2, 0.1}, constant_gaps(1.0),
                     fixed_size(500), Rng(3), got.handler());
  src.start(0.0);
  sim.run_until(40000.0);
  std::vector<int> count(4, 0);
  for (const auto& p : got.packets) ++count[p.cls];
  const double n = static_cast<double>(got.packets.size());
  EXPECT_NEAR(count[0] / n, 0.4, 0.02);
  EXPECT_NEAR(count[1] / n, 0.3, 0.02);
  EXPECT_NEAR(count[2] / n, 0.2, 0.02);
  EXPECT_NEAR(count[3] / n, 0.1, 0.02);
}

TEST(ClassMixSource, NormalizesFractions) {
  Simulator sim;
  PacketIdAllocator ids;
  Collected got;
  ClassMixSource src(sim, ids, {40.0, 30.0, 20.0, 10.0}, constant_gaps(1.0),
                     fixed_size(500), Rng(3), got.handler());
  src.start(0.0);
  sim.run_until(100.0);
  EXPECT_EQ(got.packets.size(), 100u);
}

TEST(ClassMixSource, RejectsDegenerateFractions) {
  Simulator sim;
  PacketIdAllocator ids;
  Collected got;
  EXPECT_THROW(ClassMixSource(sim, ids, {}, constant_gaps(1.0),
                              fixed_size(10), Rng(1), got.handler()),
               std::invalid_argument);
  EXPECT_THROW(ClassMixSource(sim, ids, {0.0, 0.0}, constant_gaps(1.0),
                              fixed_size(10), Rng(1), got.handler()),
               std::invalid_argument);
}

TEST(CbrFlow, EmitsExactCountAtExactTimes) {
  Simulator sim;
  PacketIdAllocator ids;
  Collected got;
  CbrFlowSource flow(sim, ids, 3, 17, 4, 500, 2.5, got.handler());
  flow.start(10.0);
  EXPECT_FALSE(flow.finished());
  sim.run();
  ASSERT_EQ(got.packets.size(), 4u);
  EXPECT_TRUE(flow.finished());
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_DOUBLE_EQ(got.packets[i].created,
                     10.0 + 2.5 * static_cast<double>(i));
    EXPECT_EQ(got.packets[i].flow, 17u);
    EXPECT_EQ(got.packets[i].cls, 3u);
  }
}

TEST(CbrFlow, SinglePacketFlow) {
  Simulator sim;
  PacketIdAllocator ids;
  Collected got;
  CbrFlowSource flow(sim, ids, 0, 1, 1, 100, 1.0, got.handler());
  flow.start(0.0);
  sim.run();
  EXPECT_EQ(got.packets.size(), 1u);
  EXPECT_TRUE(flow.finished());
}

TEST(LawSize, SamplerUsesDistribution) {
  Simulator sim;
  PacketIdAllocator ids;
  Collected got;
  RenewalSource src(sim, ids, 0, constant_gaps(1.0),
                    law_size(paper_size_law()), Rng(5), got.handler());
  src.start(0.0);
  sim.run_until(1000.0);
  for (const auto& p : got.packets) {
    EXPECT_TRUE(p.size_bytes == 40 || p.size_bytes == 550 ||
                p.size_bytes == 1500);
  }
}

// ----------------------------------------------------------- calibration

TEST(Calibration, SingleClassInterarrival) {
  // rho=0.5, f=1, R=39.375 B/tu, E[L]=441 B: lambda = 0.5/11.2 pkts/tu.
  const double gap = class_mean_interarrival(0.5, 1.0, 39.375, 441.0);
  EXPECT_NEAR(gap, 11.2 / 0.5, 1e-9);
}

TEST(Calibration, FractionsScaleInversely) {
  const auto gaps =
      class_mean_interarrivals(0.95, {0.4, 0.3, 0.2, 0.1}, 39.375, 441.0);
  ASSERT_EQ(gaps.size(), 4u);
  // Class with 4x the load fraction has 1/4 the interarrival gap.
  EXPECT_NEAR(gaps[3] / gaps[0], 4.0, 1e-9);
  // Aggregate packet rate = rho * R / E[L].
  double agg = 0.0;
  for (const double g : gaps) agg += 1.0 / g;
  EXPECT_NEAR(agg, 0.95 * 39.375 / 441.0, 1e-9);
}

TEST(Calibration, NormalizeFractions) {
  const auto norm = normalize_fractions({40.0, 30.0, 20.0, 10.0});
  EXPECT_NEAR(norm[0], 0.4, 1e-12);
  EXPECT_NEAR(norm[3], 0.1, 1e-12);
  EXPECT_THROW(normalize_fractions({}), std::invalid_argument);
  EXPECT_THROW(normalize_fractions({0.0}), std::invalid_argument);
  EXPECT_THROW(normalize_fractions({-1.0, 2.0}), std::invalid_argument);
}

TEST(Calibration, RejectsNonPositiveInputs) {
  EXPECT_THROW(class_mean_interarrival(0.0, 1.0, 1.0, 1.0),
               std::invalid_argument);
  EXPECT_THROW(class_mean_interarrival(0.5, 0.0, 1.0, 1.0),
               std::invalid_argument);
  EXPECT_THROW(class_mean_interarrival(0.5, 1.0, 0.0, 1.0),
               std::invalid_argument);
}

}  // namespace
}  // namespace pds
