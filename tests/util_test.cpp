#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include "util/args.hpp"
#include "util/contracts.hpp"
#include "util/csv.hpp"
#include "util/table.hpp"

namespace pds {
namespace {

// ---------------------------------------------------------------- ArgParser

ArgParser parse(std::vector<const char*> argv) {
  argv.insert(argv.begin(), "prog");
  return ArgParser(static_cast<int>(argv.size()), argv.data());
}

TEST(ArgParser, ParsesKeyEqualsValue) {
  const auto args = parse({"--rho=0.95"});
  EXPECT_TRUE(args.has("rho"));
  EXPECT_DOUBLE_EQ(args.get_double("rho", 0.0), 0.95);
}

TEST(ArgParser, ParsesKeySpaceValue) {
  const auto args = parse({"--seeds", "7"});
  EXPECT_EQ(args.get_int("seeds", 0), 7);
}

TEST(ArgParser, BareFlagIsTrue) {
  const auto args = parse({"--full"});
  EXPECT_TRUE(args.get_bool("full", false));
}

TEST(ArgParser, MissingKeyYieldsDefault) {
  const auto args = parse({});
  EXPECT_FALSE(args.has("rho"));
  EXPECT_DOUBLE_EQ(args.get_double("rho", 0.7), 0.7);
  EXPECT_EQ(args.get_string("out", "x.csv"), "x.csv");
  EXPECT_FALSE(args.get_bool("full", false));
}

TEST(ArgParser, BooleanSpellings) {
  EXPECT_TRUE(parse({"--a=true"}).get_bool("a", false));
  EXPECT_TRUE(parse({"--a=1"}).get_bool("a", false));
  EXPECT_TRUE(parse({"--a=yes"}).get_bool("a", false));
  EXPECT_FALSE(parse({"--a=false"}).get_bool("a", true));
  EXPECT_FALSE(parse({"--a=0"}).get_bool("a", true));
  EXPECT_FALSE(parse({"--a=no"}).get_bool("a", true));
  EXPECT_THROW(parse({"--a=maybe"}).get_bool("a", true),
               std::invalid_argument);
}

TEST(ArgParser, DoubleListParsing) {
  const auto args = parse({"--sdp=1,2,4,8"});
  const auto v = args.get_double_list("sdp", {});
  ASSERT_EQ(v.size(), 4u);
  EXPECT_DOUBLE_EQ(v[0], 1.0);
  EXPECT_DOUBLE_EQ(v[3], 8.0);
}

TEST(ArgParser, DoubleListDefault) {
  const auto v = parse({}).get_double_list("sdp", {1.0, 2.0});
  ASSERT_EQ(v.size(), 2u);
}

TEST(ArgParser, RejectsPositionalArguments) {
  EXPECT_THROW(parse({"positional"}), std::invalid_argument);
}

TEST(ArgParser, RejectsMalformedNumbers) {
  EXPECT_THROW(parse({"--rho=abc"}).get_double("rho", 0.0),
               std::invalid_argument);
  EXPECT_THROW(parse({"--rho=1.5x"}).get_double("rho", 0.0),
               std::invalid_argument);
  EXPECT_THROW(parse({"--n=1.5"}).get_int("n", 0), std::invalid_argument);
}

TEST(ArgParser, LastOccurrenceWins) {
  const auto args = parse({"--rho=0.7", "--rho=0.9"});
  EXPECT_DOUBLE_EQ(args.get_double("rho", 0.0), 0.9);
}

TEST(ArgParser, UnknownKeysDetected) {
  const auto args = parse({"--rho=0.9", "--sede=1"});
  const auto unknown = args.unknown_keys({"rho", "seed"});
  ASSERT_EQ(unknown.size(), 1u);
  EXPECT_EQ(unknown[0], "sede");
}

TEST(ArgParser, NegativeValuesViaEquals) {
  // `--key value` would treat "-3" as ambiguous; the = form is exact.
  EXPECT_EQ(parse({"--off=-3"}).get_int("off", 0), -3);
}

TEST(ArgParser, RequireKnownPassesWhenAllKeysAreAllowed) {
  EXPECT_NO_THROW(
      parse({"--rho=0.9", "--seed=1"}).require_known({"rho", "seed"}));
}

TEST(ArgParser, RequireKnownSuggestsTheNearestKey) {
  try {
    parse({"--sede=1"}).require_known({"rho", "seed", "jobs"});
    FAIL() << "expected UsageError";
  } catch (const UsageError& e) {
    EXPECT_STREQ(e.what(), "unknown option --sede (did you mean --seed?)");
  }
  try {
    parse({"--sim-tmie=1e5"}).require_known({"sim-time", "seeds", "jobs"});
    FAIL() << "expected UsageError";
  } catch (const UsageError& e) {
    EXPECT_STREQ(e.what(),
                 "unknown option --sim-tmie (did you mean --sim-time?)");
  }
}

TEST(ArgParser, RequireKnownOmitsFarFetchedHints) {
  // Nothing within edit distance 2: plain rejection, no guess.
  try {
    parse({"--frobnicate"}).require_known({"rho", "seed"});
    FAIL() << "expected UsageError";
  } catch (const UsageError& e) {
    EXPECT_STREQ(e.what(), "unknown option --frobnicate");
  }
}

// RAII guard so PDS_JOBS manipulation never leaks into other tests.
class PdsJobsEnvGuard {
 public:
  PdsJobsEnvGuard() {
    const char* old = std::getenv("PDS_JOBS");
    if (old != nullptr) saved_ = old;
  }
  ~PdsJobsEnvGuard() {
    if (saved_.empty()) {
      unsetenv("PDS_JOBS");
    } else {
      setenv("PDS_JOBS", saved_.c_str(), 1);
    }
  }

 private:
  std::string saved_;
};

TEST(ArgParser, GetJobsFlagWins) {
  const PdsJobsEnvGuard guard;
  setenv("PDS_JOBS", "7", 1);
  EXPECT_EQ(parse({"--jobs=3"}).get_jobs(), 3u);
}

TEST(ArgParser, GetJobsFallsBackToEnv) {
  const PdsJobsEnvGuard guard;
  setenv("PDS_JOBS", "5", 1);
  EXPECT_EQ(parse({}).get_jobs(), 5u);
}

TEST(ArgParser, GetJobsAbsentMeansAuto) {
  const PdsJobsEnvGuard guard;
  unsetenv("PDS_JOBS");
  EXPECT_EQ(parse({}).get_jobs(), 0u);
  EXPECT_EQ(parse({"--jobs=0"}).get_jobs(), 0u);
}

TEST(ArgParser, GetJobsRejectsGarbage) {
  const PdsJobsEnvGuard guard;
  unsetenv("PDS_JOBS");
  EXPECT_THROW(parse({"--jobs=many"}).get_jobs(), std::invalid_argument);
  EXPECT_THROW(parse({"--jobs=-2"}).get_jobs(), std::exception);
  setenv("PDS_JOBS", "2x", 1);
  EXPECT_THROW(parse({}).get_jobs(), std::exception);
}

// -------------------------------------------------------------- TablePrinter

TEST(TablePrinter, AlignsColumns) {
  TablePrinter t({"rho", "WTP 1/2"});
  t.add_row({"70%", "1.52"});
  t.add_row({"99.9%", "2.00"});
  std::ostringstream os;
  t.print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("rho"), std::string::npos);
  EXPECT_NE(out.find("99.9%"), std::string::npos);
  // Header, separator, two rows.
  EXPECT_EQ(std::count(out.begin(), out.end(), '\n'), 4);
}

TEST(TablePrinter, RejectsWidthMismatch) {
  TablePrinter t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), std::invalid_argument);
}

TEST(TablePrinter, RejectsEmptyHeader) {
  EXPECT_THROW(TablePrinter({}), std::invalid_argument);
}

TEST(TablePrinter, NumFormatsFixedPrecision) {
  EXPECT_EQ(TablePrinter::num(1.23456, 2), "1.23");
  EXPECT_EQ(TablePrinter::num(2.0, 1), "2.0");
  EXPECT_EQ(TablePrinter::num(-0.5, 3), "-0.500");
}

TEST(TablePrinter, CountsRows) {
  TablePrinter t({"x"});
  EXPECT_EQ(t.num_rows(), 0u);
  t.add_row({"1"});
  EXPECT_EQ(t.num_rows(), 1u);
}

// ----------------------------------------------------------------- CsvWriter

TEST(CsvWriter, WritesHeaderAndRows) {
  const std::string path = testing::TempDir() + "pds_csv_test.csv";
  {
    CsvWriter w(path, {"t", "delay"});
    w.add_row(std::vector<double>{1.5, 2.25});
    w.add_row(std::vector<std::string>{"x", "y"});
  }
  std::ifstream in(path);
  std::string line;
  std::getline(in, line);
  EXPECT_EQ(line, "t,delay");
  std::getline(in, line);
  EXPECT_EQ(line, "1.5,2.25");
  std::getline(in, line);
  EXPECT_EQ(line, "x,y");
  std::remove(path.c_str());
}

TEST(CsvWriter, RejectsWidthMismatch) {
  const std::string path = testing::TempDir() + "pds_csv_test2.csv";
  CsvWriter w(path, {"a", "b"});
  EXPECT_THROW(w.add_row(std::vector<double>{1.0}), std::invalid_argument);
  std::remove(path.c_str());
}

TEST(CsvWriter, RejectsUnwritablePath) {
  EXPECT_THROW(CsvWriter("/nonexistent-dir/x.csv", {"a"}),
               std::runtime_error);
}

bool file_exists(const std::string& path) {
  return static_cast<bool>(std::ifstream(path));
}

TEST(CsvWriter, CommitsAtomicallyOnClose) {
  const std::string path = testing::TempDir() + "pds_csv_atomic.csv";
  std::remove(path.c_str());
  CsvWriter w(path, {"a"});
  w.add_row(std::vector<double>{1.0});
  // Until close, only the temp file exists — an interrupted run can never
  // leave a truncated CSV under the final name.
  EXPECT_FALSE(file_exists(path));
  EXPECT_TRUE(file_exists(path + ".tmp"));
  w.close();
  EXPECT_TRUE(file_exists(path));
  EXPECT_FALSE(file_exists(path + ".tmp"));
  EXPECT_THROW(w.add_row(std::vector<double>{2.0}), std::invalid_argument);
  w.close();  // idempotent
  std::remove(path.c_str());
}

TEST(CsvWriter, OverwritesAPreviousFileOnlyOnCommit) {
  const std::string path = testing::TempDir() + "pds_csv_atomic2.csv";
  {
    CsvWriter w(path, {"a"});
    w.add_row(std::vector<double>{1.0});
  }
  {
    CsvWriter w(path, {"a"});
    w.add_row(std::vector<double>{2.0});
    // The previous run's committed file is intact while this one writes.
    std::ifstream in(path);
    std::string line;
    std::getline(in, line);
    std::getline(in, line);
    EXPECT_EQ(line, "1");
  }
  std::ifstream in(path);
  std::string line;
  std::getline(in, line);
  std::getline(in, line);
  EXPECT_EQ(line, "2");
  std::remove(path.c_str());
}

TEST(CsvWriter, UnwindingDiscardsThePartialFile) {
  const std::string path = testing::TempDir() + "pds_csv_unwind.csv";
  std::remove(path.c_str());
  try {
    CsvWriter w(path, {"a"});
    w.add_row(std::vector<double>{1.0});
    throw std::runtime_error("interrupted");
  } catch (const std::runtime_error&) {
  }
  // Neither the final file nor the temp file survives the exception.
  EXPECT_FALSE(file_exists(path));
  EXPECT_FALSE(file_exists(path + ".tmp"));
}

// ----------------------------------------------------------------- contracts

TEST(Contracts, CheckThrowsInvalidArgumentWithContext) {
  try {
    PDS_CHECK(1 == 2, "message here");
    FAIL() << "expected throw";
  } catch (const std::invalid_argument& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("1 == 2"), std::string::npos);
    EXPECT_NE(what.find("message here"), std::string::npos);
  }
}

TEST(Contracts, RequireThrowsLogicError) {
  EXPECT_THROW(PDS_REQUIRE(false), std::logic_error);
  EXPECT_NO_THROW(PDS_REQUIRE(true));
}

}  // namespace
}  // namespace pds
