#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "rng/distributions.hpp"
#include "stats/variance_time.hpp"
#include "traffic/onoff.hpp"

namespace pds {
namespace {

TEST(CountSeries, BucketsArrivalsBySlot) {
  CountSeries series(10.0, 0.0);
  for (const double t : {1.0, 2.0, 3.0, 15.0, 35.0, 36.0, 37.0}) {
    series.record(t);
  }
  const auto counts = series.finish();
  ASSERT_EQ(counts.size(), 4u);  // slots [0,10) [10,20) [20,30) [30,40)
  EXPECT_DOUBLE_EQ(counts[0], 3.0);
  EXPECT_DOUBLE_EQ(counts[1], 1.0);
  EXPECT_DOUBLE_EQ(counts[2], 0.0);
  EXPECT_DOUBLE_EQ(counts[3], 3.0);
}

TEST(CountSeries, IgnoresWarmupArrivals) {
  CountSeries series(10.0, 100.0);
  series.record(50.0);   // before start
  series.record(101.0);
  const auto counts = series.finish();
  ASSERT_EQ(counts.size(), 1u);
  EXPECT_DOUBLE_EQ(counts[0], 1.0);
}

TEST(VarianceTime, IidSeriesHasSlopeMinusOne) {
  // Independent counts: Var[mean of m] = Var/m exactly in expectation, so
  // the fitted log-log slope is -1 (H = 0.5).
  Rng rng(5);
  std::vector<double> counts;
  for (int i = 0; i < 200000; ++i) {
    counts.push_back(static_cast<double>(rng.uniform_index(10)));
  }
  const auto points = variance_time(counts, {1, 4, 16, 64, 256});
  const double slope = variance_time_slope(points);
  EXPECT_NEAR(slope, -1.0, 0.1);
  EXPECT_NEAR(hurst_from_slope(slope), 0.5, 0.05);
}

TEST(VarianceTime, PerfectlyCorrelatedSeriesHasSlopeZero) {
  // A long-period square wave: block means barely change with m below the
  // period, so the variance hardly decays (H -> 1).
  std::vector<double> counts;
  for (int i = 0; i < 100000; ++i) {
    counts.push_back((i / 10000) % 2 == 0 ? 10.0 : 0.0);
  }
  const auto points = variance_time(counts, {1, 4, 16, 64});
  const double slope = variance_time_slope(points);
  EXPECT_GT(slope, -0.1);
  EXPECT_NEAR(hurst_from_slope(slope), 1.0, 0.1);
}

TEST(VarianceTime, RejectsDegenerateInput) {
  EXPECT_THROW(variance_time({1.0, 1.0, 1.0, 1.0}, {1, 2}),
               std::invalid_argument);  // constant series
  EXPECT_THROW(variance_time({1.0, 2.0}, {1}), std::invalid_argument);
  std::vector<double> ok{1, 2, 3, 4, 5, 6, 7, 8};
  EXPECT_THROW(variance_time(ok, {}), std::invalid_argument);
  EXPECT_THROW(variance_time(ok, {0}), std::invalid_argument);
  EXPECT_THROW(variance_time_slope({{1, 1.0}}), std::invalid_argument);
}

// The headline property: aggregated Pareto on/off sources are burstier
// across timescales (higher Hurst estimate) than Poisson traffic of the
// same mean rate — the traffic regime the paper's schedulers must handle.
TEST(VarianceTime, ParetoOnOffBeatsPoissonBurstiness) {
  Simulator sim;
  PacketIdAllocator ids;
  Rng master(11);

  CountSeries onoff_series(50.0, 1.0e4);
  std::vector<std::unique_ptr<OnOffSource>> sources;
  for (int s = 0; s < 10; ++s) {
    OnOffConfig c;
    c.packet_bytes = 100;
    c.peak_rate = 2.0;
    c.mean_on = 300.0;
    c.mean_off = 700.0;
    c.pareto_alpha = 1.4;
    sources.push_back(std::make_unique<OnOffSource>(
        sim, ids, c, master.split(),
        [&](Packet) { onoff_series.record(sim.now()); }));
    sources.back()->start(0.0);
  }
  sim.run_until(1.0e6);
  for (auto& s : sources) s->stop();
  const auto onoff_counts = onoff_series.finish();

  // Poisson reference with a comparable mean count per slot.
  Rng prng(13);
  const double mean_per_slot =
      [&] {
        double total = 0.0;
        for (const double c : onoff_counts) total += c;
        return total / static_cast<double>(onoff_counts.size());
      }();
  std::vector<double> poisson_counts;
  const ExponentialDist gap(50.0 / mean_per_slot);
  double t = 0.0;
  CountSeries poisson_series(50.0, 0.0);
  while (t < 1.0e6) {
    t += gap.sample(prng);
    if (t < 1.0e6) poisson_series.record(t);
  }
  poisson_counts = poisson_series.finish();

  const std::vector<std::uint64_t> levels{1, 4, 16, 64, 256};
  const double h_onoff =
      hurst_from_slope(variance_time_slope(variance_time(onoff_counts,
                                                         levels)));
  const double h_poisson = hurst_from_slope(
      variance_time_slope(variance_time(poisson_counts, levels)));
  EXPECT_NEAR(h_poisson, 0.5, 0.1);
  EXPECT_GT(h_onoff, h_poisson + 0.1);
  EXPECT_GT(h_onoff, 0.6);
}

}  // namespace
}  // namespace pds
