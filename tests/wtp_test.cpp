#include <gtest/gtest.h>

#include "sched/wtp.hpp"
#include "test_helpers.hpp"

namespace pds {
namespace {

using testutil::packet;
using testutil::replay;
using testutil::ScriptedArrival;

WtpScheduler make_wtp(std::vector<double> sdp) {
  SchedulerConfig c;
  c.sdp = std::move(sdp);
  return WtpScheduler(c);
}

TEST(Wtp, PriorityIsWaitTimesSdp) {
  auto wtp = make_wtp({1.0, 2.0, 4.0});
  wtp.enqueue(packet(1, 0, 100, 0.0), 0.0);
  wtp.enqueue(packet(2, 2, 100, 6.0), 6.0);
  EXPECT_DOUBLE_EQ(wtp.head_priority(0, 10.0), 10.0);   // 10 * 1
  EXPECT_DOUBLE_EQ(wtp.head_priority(2, 10.0), 16.0);   // 4 * 4
  EXPECT_DOUBLE_EQ(wtp.head_priority(1, 10.0), 0.0);    // empty
}

TEST(Wtp, ServesHighestPriorityHead) {
  auto wtp = make_wtp({1.0, 2.0, 4.0});
  wtp.enqueue(packet(1, 0, 100, 0.0), 0.0);   // p = 10
  wtp.enqueue(packet(2, 1, 100, 2.0), 2.0);   // p = 16
  wtp.enqueue(packet(3, 2, 100, 7.0), 7.0);   // p = 12
  EXPECT_EQ(wtp.dequeue(10.0)->id, 2u);
  // Then: p0 = 10, p2 = 12.
  EXPECT_EQ(wtp.dequeue(10.0)->id, 3u);
  EXPECT_EQ(wtp.dequeue(10.0)->id, 1u);
}

TEST(Wtp, TieBreakFavoursHigherClass) {
  auto wtp = make_wtp({1.0, 2.0});
  wtp.enqueue(packet(1, 0, 100, 0.0), 0.0);   // p = 8 * 1
  wtp.enqueue(packet(2, 1, 100, 4.0), 4.0);   // p = 4 * 2
  EXPECT_EQ(wtp.dequeue(8.0)->cls, 1u);
}

TEST(Wtp, FifoWithinClass) {
  auto wtp = make_wtp({1.0, 2.0});
  wtp.enqueue(packet(1, 1, 100, 0.0), 0.0);
  wtp.enqueue(packet(2, 1, 100, 1.0), 1.0);
  EXPECT_EQ(wtp.dequeue(5.0)->id, 1u);
  EXPECT_EQ(wtp.dequeue(5.0)->id, 2u);
}

TEST(Wtp, EmptyDequeueIsNullopt) {
  auto wtp = make_wtp({1.0});
  EXPECT_FALSE(wtp.dequeue(0.0).has_value());
}

TEST(Wtp, ZeroWaitArrivalsHavePriorityZero) {
  auto wtp = make_wtp({1.0, 8.0});
  wtp.enqueue(packet(1, 0, 100, 5.0), 5.0);
  wtp.enqueue(packet(2, 1, 100, 5.0), 5.0);
  // Both priorities are 0; the tie goes to the higher class.
  EXPECT_EQ(wtp.dequeue(5.0)->cls, 1u);
}

// ----------------------------------------------------------- Proposition 2
//
// R1: peak input rate; R: link rate; classes i < j (s_i < s_j). If
// s_i/s_j < 1 - R/R1, an arbitrarily long back-to-back class-j burst
// starting at t0 is fully served before any class-i packet arriving at or
// after t0.

// All three scenarios use an "occupier" packet at t = 0 that seizes the idle
// link, so the first real scheduling decision happens with both queues
// backlogged (the proposition compares priorities of *queued* packets).
// The class-i victim arrives at t = 0.5, which is "at t0 or later".

TEST(WtpProposition2, BurstExcludesLowerClassWhenConditionHolds) {
  // Unit-size packets of 100 B; R = 10 B/tu (tx = 10 tu), R1 = 50 B/tu
  // (arrival gap 2 tu). 1 - R/R1 = 0.8; choose s_i/s_j = 1/8 < 0.8.
  SchedulerConfig c;
  c.sdp = {1.0, 8.0};
  WtpScheduler wtp(c);
  std::vector<ScriptedArrival> script;
  script.push_back({0.0, 0, 100});  // occupier
  script.push_back({0.5, 0, 100});  // class-i victim
  const int kBurst = 40;
  for (int k = 0; k < kBurst; ++k) {
    script.push_back({k * 2.0, 1, 100});  // burst at rate R1 from t0 = 0
  }
  const auto out = replay(wtp, 10.0, script);
  ASSERT_EQ(out.size(), 2u + kBurst);
  EXPECT_EQ(out.front().cls, 0u);  // the occupier
  for (int k = 1; k <= kBurst; ++k) {
    EXPECT_EQ(out[static_cast<size_t>(k)].cls, 1u) << "position " << k;
  }
  EXPECT_EQ(out.back().cls, 0u);  // the victim leaves dead last
}

TEST(WtpProposition2, LowerClassInterleavesWhenConditionFails) {
  // Same arrival pattern but s_i/s_j = 1/2 > 1 - R/R1 = ... with gap 8 tu
  // (R1 = 12.5, 1 - R/R1 = 0.2 < 0.5): the class-i packet must not wait for
  // the whole burst.
  SchedulerConfig c;
  c.sdp = {1.0, 2.0};
  WtpScheduler wtp(c);
  std::vector<ScriptedArrival> script;
  script.push_back({0.0, 0, 100});  // occupier
  script.push_back({0.5, 0, 100});  // victim
  const int kBurst = 40;
  for (int k = 0; k < kBurst; ++k) {
    script.push_back({k * 8.0, 1, 100});
  }
  const auto out = replay(wtp, 10.0, script);
  ASSERT_EQ(out.size(), 2u + kBurst);
  std::size_t victim_position = out.size();
  for (std::size_t i = 1; i < out.size(); ++i) {
    if (out[i].cls == 0) victim_position = i;
  }
  EXPECT_LT(victim_position, out.size() - 1)
      << "class-i packet should overtake part of the burst";
}

TEST(WtpProposition2, ConditionBoundaryScalesWithBurstRate) {
  // With a *slower* burst (R1 closer to R) the same SDP pair that starved
  // the low class above no longer does: gap 9 tu -> 1 - R/R1 = 1/9 < 1/8.
  SchedulerConfig c;
  c.sdp = {1.0, 8.0};
  WtpScheduler wtp(c);
  std::vector<ScriptedArrival> script;
  script.push_back({0.0, 0, 100});  // occupier
  script.push_back({0.5, 0, 100});  // victim
  const int kBurst = 60;
  for (int k = 0; k < kBurst; ++k) {
    script.push_back({k * 9.0, 1, 100});
  }
  const auto out = replay(wtp, 10.0, script);
  std::size_t victim_position = out.size();
  for (std::size_t i = 1; i < out.size(); ++i) {
    if (out[i].cls == 0) victim_position = i;
  }
  EXPECT_LT(victim_position, out.size() - 1);
}

}  // namespace
}  // namespace pds
